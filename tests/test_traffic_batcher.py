"""Dynamic batching: max-batch and max-wait triggers over policies."""

import numpy as np
import pytest

from repro.data.batching import (
    PooledBucketing,
    ShuffledBatching,
    SortedBatching,
)
from repro.errors import ConfigurationError
from repro.traffic import DynamicBatcher, form_batches
from repro.train.frame import NO_TGT


def _stream(arrivals, lengths, targets=None):
    arrival_s = np.asarray(arrivals, dtype=np.float64)
    seq_len = np.asarray(lengths, dtype=np.int64)
    if targets is None:
        tgt_len = np.full(seq_len.size, NO_TGT, dtype=np.int64)
    else:
        tgt_len = np.asarray(targets, dtype=np.int64)
    return arrival_s, seq_len, tgt_len


class TestMaxBatchTrigger:
    def test_shuffled_dispatches_full_batches_in_arrival_order(self):
        arrival, seq, tgt = _stream(
            [0.0, 0.1, 0.2, 0.3], [40, 10, 30, 20]
        )
        batches = form_batches(arrival, seq, tgt, ShuffledBatching(2), 10.0)
        assert [b.members.tolist() for b in batches] == [[0, 1], [2, 3]]
        # FIFO policies never reorder: padded maximum per batch.
        assert [b.seq_len for b in batches] == [40, 30]
        assert batches[0].form_time_s == 0.1  # closed on the 2nd arrival

    def test_pooled_sorts_within_its_pool(self):
        policy = PooledBucketing(2, pool_factor=2)
        arrival, seq, tgt = _stream(
            [0.0, 0.0, 0.0, 0.0], [40, 10, 30, 20]
        )
        batches = form_batches(arrival, seq, tgt, policy, 10.0)
        assert [b.members.tolist() for b in batches] == [[1, 3], [2, 0]]
        assert [b.seq_len for b in batches] == [20, 40]

    def test_sorted_policy_only_flushes_on_the_deadline(self):
        arrival, seq, tgt = _stream(
            [0.0, 0.01, 0.02, 0.03], [4, 3, 2, 1]
        )
        batches = form_batches(arrival, seq, tgt, SortedBatching(2), 10.0)
        # All four waited for one deadline flush, globally sorted.
        assert [b.members.tolist() for b in batches] == [[3, 2], [1, 0]]
        assert batches[0].form_time_s == pytest.approx(10.0)


class TestMaxWaitTrigger:
    def test_deadline_flush_happens_at_the_deadline(self):
        arrival, seq, tgt = _stream([0.0, 5.0], [10, 20])
        batches = form_batches(arrival, seq, tgt, ShuffledBatching(4), 0.5)
        # Request 0's deadline (t=0.5) expired before request 1 arrived.
        assert [b.members.tolist() for b in batches] == [[0], [1]]
        assert batches[0].form_time_s == pytest.approx(0.5)
        assert batches[1].form_time_s == pytest.approx(5.5)

    def test_ragged_tail_is_kept(self):
        arrival, seq, tgt = _stream([0.0, 0.0, 0.0], [10, 20, 30])
        batches = form_batches(arrival, seq, tgt, ShuffledBatching(2), 0.5)
        assert [len(b) for b in batches] == [2, 1]

    def test_every_request_lands_in_exactly_one_batch(self):
        rng = np.random.default_rng(0)
        arrival = np.sort(rng.uniform(0, 3, size=100))
        seq = rng.integers(1, 200, size=100)
        batches = form_batches(
            arrival, seq, np.full(100, NO_TGT), PooledBucketing(8), 0.25
        )
        members = np.concatenate([b.members for b in batches])
        assert sorted(members.tolist()) == list(range(100))


class TestPadding:
    def test_pad_multiple_applies_to_both_sides(self):
        policy = ShuffledBatching(2, pad_multiple=8)
        arrival, seq, tgt = _stream([0.0, 0.0], [9, 3], [5, 11])
        batches = form_batches(arrival, seq, tgt, policy, 0.5)
        assert batches[0].seq_len == 16
        assert batches[0].tgt_len == 16

    def test_no_target_stays_no_target(self):
        arrival, seq, tgt = _stream([0.0], [9])
        batches = form_batches(
            arrival, seq, tgt, ShuffledBatching(2, pad_multiple=8), 0.5
        )
        assert batches[0].tgt_len == NO_TGT


class TestValidation:
    def test_max_wait_must_be_positive(self):
        arrival, seq, tgt = _stream([0.0], [1])
        with pytest.raises(ConfigurationError, match="max_wait_s"):
            form_batches(arrival, seq, tgt, ShuffledBatching(2), 0.0)
        with pytest.raises(ConfigurationError, match="max_wait_s"):
            DynamicBatcher(ShuffledBatching(2), max_wait_s=-1.0)

    def test_arrivals_must_be_sorted(self):
        arrival, seq, tgt = _stream([1.0, 0.5], [1, 2])
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            form_batches(arrival, seq, tgt, ShuffledBatching(2), 0.5)

    def test_column_lengths_must_agree(self):
        with pytest.raises(ConfigurationError, match="disagree"):
            form_batches(
                np.zeros(2), np.ones(3, dtype=np.int64),
                np.full(2, NO_TGT), ShuffledBatching(2), 0.5
            )


class TestDynamicBatcher:
    def test_batcher_matches_free_function(self):
        arrival, seq, tgt = _stream([0.0, 0.1, 0.2], [5, 15, 10])
        batcher = DynamicBatcher(PooledBucketing(2), max_wait_s=0.5)
        direct = form_batches(arrival, seq, tgt, batcher.policy, 0.5)
        via_batcher = batcher.form(arrival, seq, tgt)
        assert [b.members.tolist() for b in direct] == [
            b.members.tolist() for b in via_batcher
        ]
