"""Unit tests for the process-parallel sweep engine.

The load-bearing guarantee is bit-identity: every execution mode must
reproduce, float for float, what a plain serial loop over
``AnalysisEngine.run`` produces for the expanded grid.
"""

import json

import pytest

from repro.api import (
    AnalysisEngine,
    SweepSpec,
    plan_sweep,
    run_sweep,
    trace_key,
)
from repro.api.spec import AnalysisSpec
from repro.errors import ConfigurationError

SCALE = 0.01


def small_sweep(**overrides) -> SweepSpec:
    payload = {
        "networks": ("gnmt",),
        "scales": (SCALE,),
        "seeds": (0, 1),
        "selectors": ("seqpoint", "frequent"),
    }
    payload.update(overrides)
    return SweepSpec(**payload)


def serial_reference(sweep: SweepSpec) -> list[dict]:
    engine = AnalysisEngine()
    projection = sweep.projection()
    return [engine.run(spec, projection).to_dict() for spec in sweep.expand()]


class TestSweepSpec:
    def test_scalar_axes_normalise(self):
        sweep = SweepSpec(networks="gnmt", scales=SCALE, seeds=3)
        assert sweep.networks == ("gnmt",)
        assert sweep.scales == (SCALE,)
        assert sweep.seeds == (3,)

    def test_axes_dedupe_preserving_order(self):
        sweep = SweepSpec(networks=("gnmt",), scales=(SCALE,), seeds=(2, 0, 2, 1))
        assert sweep.seeds == (2, 0, 1)

    def test_selector_forms(self):
        sweep = SweepSpec(
            networks=("gnmt",),
            scales=(SCALE,),
            selectors=(
                "frequent",
                {"selector": "seqpoint", "kwargs": {"error_threshold_pct": 0.5}},
                ("kmeans", {"k": 3}),
            ),
        )
        assert sweep.selectors == (
            ("frequent", ()),
            ("seqpoint", (("error_threshold_pct", 0.5),)),
            ("kmeans", (("k", 3),)),
        )

    def test_single_mapping_selector_is_scalar(self):
        sweep = SweepSpec(
            networks="gnmt",
            scales=SCALE,
            selectors={"selector": "seqpoint", "kwargs": {"error_threshold_pct": 0.5}},
        )
        assert sweep.selectors == (("seqpoint", (("error_threshold_pct", 0.5),)),)

    def test_unhashable_kwargs_survive_dedupe(self):
        from repro.api.parallel import _axis, _normalise_selector

        entry = {"selector": "seqpoint", "kwargs": {"w": [1, 2]}}
        deduped = _axis("selectors", (entry, entry), _normalise_selector)
        assert deduped == (("seqpoint", (("w", [1, 2]),)),)

    def test_serial_mode_reports_one_worker(self):
        assert run_sweep(small_sweep(), mode="serial", workers=8).workers == 1

    def test_expansion_order_and_len(self):
        sweep = small_sweep()
        points = sweep.expand()
        assert len(points) == len(sweep) == 4
        assert [(p.seed, p.selector) for p in points] == [
            (0, "seqpoint"), (0, "frequent"), (1, "seqpoint"), (1, "frequent"),
        ]

    def test_round_trips_through_json(self):
        sweep = small_sweep(targets=(1, 3))
        payload = json.loads(json.dumps(sweep.to_dict()))
        assert SweepSpec.from_dict(payload) == sweep

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown SweepSpec fields"):
            SweepSpec.from_dict({"networks": ["gnmt"], "selector": "seqpoint"})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="seeds cannot be empty"):
            SweepSpec(networks=("gnmt",), scales=(SCALE,), seeds=())

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown model"):
            SweepSpec(networks=("bert",), scales=(SCALE,))

    def test_bad_selector_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="selector entries"):
            SweepSpec(networks=("gnmt",), scales=(SCALE,), selectors=(42,))

    def test_targets_validated(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(networks=("gnmt",), scales=(SCALE,), targets=(99,))

    def test_projection(self):
        assert small_sweep().projection() is None
        assert small_sweep(targets=(1, 3)).projection().targets == (1, 3)


class TestPlan:
    def test_selectors_share_one_trace(self):
        plan = plan_sweep(small_sweep())
        assert len(plan.points) == 4
        # Two seeds, selectors deduped away.
        assert plan.unique_traces == 2

    def test_targets_schedule_extra_configs(self):
        plan = plan_sweep(small_sweep(targets=(1, 3)))
        assert plan.unique_traces == 4
        assert sorted({(s.seed, s.config) for s in plan.simulations}) == [
            (0, 1), (0, 3), (1, 1), (1, 3),
        ]

    def test_keys_match_engine(self):
        engine = AnalysisEngine()
        plan = plan_sweep(small_sweep(), noise_sigma=engine.noise_sigma)
        assert plan.trace_keys == tuple(
            engine.trace_key(spec) for spec in plan.simulations
        )

    def test_noise_sigma_changes_keys(self):
        spec = AnalysisSpec(network="gnmt", scale=SCALE)
        assert trace_key(spec, 0.0) != trace_key(spec, 0.02)


class TestRunSweep:
    def test_serial_matches_plain_loop(self):
        sweep = small_sweep()
        run = run_sweep(sweep, mode="serial")
        assert [r.to_dict() for r in run.results] == serial_reference(sweep)
        assert run.mode == "serial"
        assert run.unique_traces == 2

    def test_thread_matches_plain_loop(self):
        sweep = small_sweep(targets=(1, 3))
        run = run_sweep(sweep, mode="thread", workers=4)
        assert [r.to_dict() for r in run.results] == serial_reference(sweep)

    def test_results_in_expansion_order(self):
        sweep = small_sweep()
        run = run_sweep(sweep, mode="serial")
        assert [r.spec for r in run.results] == list(sweep.expand())

    def test_engine_method_delegates(self):
        sweep = small_sweep()
        run = AnalysisEngine().run_sweep(sweep, mode="serial")
        assert [r.to_dict() for r in run.results] == serial_reference(sweep)

    def test_run_to_dict_shape(self):
        run = run_sweep(small_sweep(), mode="serial")
        payload = run.to_dict()
        assert payload["mode"] == "serial"
        assert payload["unique_traces"] == 2
        assert len(payload["results"]) == len(run) == 4
        assert payload["sweep"] == small_sweep().to_dict()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep mode"):
            run_sweep(small_sweep(), mode="fork-bomb")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            run_sweep(small_sweep(), workers=0)


class TestProcessPool:
    """One spawn-backed test: the expensive, load-bearing guarantee."""

    def test_process_matches_plain_loop(self, tmp_path):
        sweep = small_sweep(targets=(1, 3))
        run = run_sweep(sweep, mode="process", workers=2, cache_dir=tmp_path)
        assert [r.to_dict() for r in run.results] == serial_reference(sweep)
        assert run.mode == "process"
        # Workers left one artefact per unique trace in the shared cache.
        assert len(list(tmp_path.glob("*.npt"))) == run.unique_traces == 4
