"""Batched lowering→timing pipeline vs the scalar reference.

The equivalence matrix of the columnar-plan refactor: across models ×
shapes × hardware configs × noise seeds, the batched executor
(``SchedulePlan`` + ``run_batch`` + vectorized reductions), the
vectorized autotuner, and the vectorized GEMM dispatch race must all be
**bit-identical** to the retained scalar reference paths — not merely
approximately equal.
"""

from __future__ import annotations

import pytest

from repro.api.registry import (
    DATASETS,
    build_batching,
    default_batching,
    default_dataset,
)
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.kernels.autotune import Autotuner
from repro.kernels.gemm import (
    GEMM_VARIANTS,
    _select,
    _select_reference,
    build_gemm,
    candidate_times,
)
from repro.hw.timing import time_work
from repro.models.ds2 import build_ds2
from repro.models.gnmt import build_gnmt
from repro.models.spec import IterationInputs
from repro.models.transformer import build_transformer
from repro.train.inference import InferenceRunSimulator
from repro.train.iteration import IterationExecutor
from repro.train.runner import TrainingRunSimulator

MODEL_BUILDERS = {
    "gnmt": build_gnmt,
    "ds2": build_ds2,
    "transformer": build_transformer,
}

SHAPES = {
    "gnmt": [
        IterationInputs(batch=64, seq_len=25, tgt_len=23),
        IterationInputs(batch=64, seq_len=804, tgt_len=776),
        IterationInputs(batch=16, seq_len=100, tgt_len=100),
    ],
    "ds2": [
        IterationInputs(batch=32, seq_len=200),
        IterationInputs(batch=64, seq_len=1500),
    ],
    "transformer": [
        IterationInputs(batch=32, seq_len=64, tgt_len=64),
    ],
}

CONFIGS = (1, 2, 3, 4, 5)


def assert_results_identical(batched, scalar):
    assert batched.time_s == scalar.time_s
    assert batched.launches == scalar.launches
    assert batched.counters == scalar.counters
    assert batched.group_times == scalar.group_times
    assert batched.kernel_names == scalar.kernel_names
    assert batched.gemm_shapes == scalar.gemm_shapes


class TestExecutorEquivalenceMatrix:
    @pytest.mark.parametrize("network", sorted(MODEL_BUILDERS))
    @pytest.mark.parametrize("config_index", CONFIGS)
    def test_train_and_forward_bit_identical(self, network, config_index):
        device = GpuDevice(paper_config(config_index))
        batched = IterationExecutor(
            MODEL_BUILDERS[network](), device, batched=True
        )
        scalar = IterationExecutor(
            MODEL_BUILDERS[network](), device, batched=False
        )
        for inputs in SHAPES[network]:
            assert_results_identical(batched.run(inputs), scalar.run(inputs))
            assert_results_identical(
                batched.run_forward(inputs), scalar.run_forward(inputs)
            )


class TestRunForwardUnique:
    """The serving fast path's bulk shape miss: all missing shapes
    through one ``run_batch``, bit-identical to shape-at-a-time."""

    @pytest.mark.parametrize("network", sorted(MODEL_BUILDERS))
    def test_bulk_misses_bit_identical(self, network):
        device = GpuDevice(paper_config(1))
        bulk = IterationExecutor(MODEL_BUILDERS[network](), device)
        reference = IterationExecutor(MODEL_BUILDERS[network](), device)
        shapes = SHAPES[network]
        # Duplicates interleaved: the gather must map repeats back to
        # the one result their shape produced.
        inputs_seq = [*shapes, shapes[0], *shapes]
        results = bulk.run_forward_unique(inputs_seq)
        assert len(results) == len(inputs_seq)
        for inputs, result in zip(inputs_seq, results):
            assert_results_identical(result, reference.run_forward(inputs))
        assert results[len(shapes)] is results[0]  # cached, not re-timed

    def test_single_miss_and_warm_cache(self):
        device = GpuDevice(paper_config(1))
        executor = IterationExecutor(build_gnmt(), device)
        reference = IterationExecutor(build_gnmt(), device)
        first = SHAPES["gnmt"][0]
        (solo,) = executor.run_forward_unique([first])
        assert_results_identical(solo, reference.run_forward(first))
        # Everything cached: no new shapes, same objects returned.
        again = executor.run_forward_unique([first, first])
        assert again[0] is solo and again[1] is solo

    def test_scalar_executor_falls_back(self):
        device = GpuDevice(paper_config(1))
        scalar = IterationExecutor(build_gnmt(), device, batched=False)
        reference = IterationExecutor(build_gnmt(), device, batched=False)
        shapes = SHAPES["gnmt"]
        results = scalar.run_forward_unique(list(shapes))
        for inputs, result in zip(shapes, results):
            assert_results_identical(result, reference.run_forward(inputs))


class TestEpochEquivalenceMatrix:
    """Whole simulated epochs, including autotune charging, evaluation
    passes, and per-iteration measurement noise."""

    def _simulator(self, network, config_index, noise_seed, batched, scale=0.02):
        model = MODEL_BUILDERS[network]()
        dataset_name = default_dataset(network)
        corpus = DATASETS.create(dataset_name, scale=scale)
        train, evaluation = corpus.split(0.02, seed=7)
        return TrainingRunSimulator(
            model=model,
            dataset=train,
            batching=build_batching(
                default_batching(network), 32, dataset=dataset_name
            ),
            device=GpuDevice(paper_config(config_index)),
            eval_dataset=evaluation,
            noise_sigma=0.02,
            seed=0,
            noise_seed=noise_seed,
            batched=batched,
        )

    @pytest.mark.parametrize("network", ["gnmt", "ds2"])
    @pytest.mark.parametrize("config_index", CONFIGS)
    def test_epoch_bit_identical_across_configs(self, network, config_index):
        reference = self._simulator(network, config_index, 0, batched=False)
        vectorized = self._simulator(network, config_index, 0, batched=True)
        frame_ref = reference.run_epoch_frame(0)
        frame_vec = vectorized.run_epoch_frame(0)
        assert frame_vec.to_payload() == frame_ref.to_payload()

    @pytest.mark.parametrize("noise_seed", [0, 1, 17])
    def test_epoch_bit_identical_across_noise_seeds(self, noise_seed):
        reference = self._simulator("gnmt", 1, noise_seed, batched=False)
        vectorized = self._simulator("gnmt", 1, noise_seed, batched=True)
        assert (
            vectorized.run_epoch_frame(0).to_payload()
            == reference.run_epoch_frame(0).to_payload()
        )

    def test_multi_epoch_autotune_settling_identical(self):
        reference = self._simulator("gnmt", 1, 0, batched=False)
        vectorized = self._simulator("gnmt", 1, 0, batched=True)
        for epoch in range(2):
            assert (
                vectorized.run_epoch_frame(epoch).to_payload()
                == reference.run_epoch_frame(epoch).to_payload()
            )
        # Autotune settles after the shapes' first epoch in both paths.
        assert (
            vectorized._autotuner.total_cost_s
            == reference._autotuner.total_cost_s
        )

    def test_inference_pass_bit_identical(self):
        def serving(batched):
            corpus = DATASETS.create(default_dataset("gnmt"), scale=0.02)
            return InferenceRunSimulator(
                model=MODEL_BUILDERS["gnmt"](),
                dataset=corpus,
                batching=build_batching(
                    default_batching("gnmt"), 16, dataset=default_dataset("gnmt")
                ),
                device=GpuDevice(paper_config(3)),
                noise_sigma=0.02,
                batched=batched,
            )

        reference = serving(False).run_pass()
        vectorized = serving(True).run_pass()
        assert vectorized.frame().to_payload() == reference.frame().to_payload()


class TestGemmRaceEquivalence:
    PROBLEMS = [
        (29, 25728, 1600), (64, 64, 64), (1000, 128, 128),
        (17, 3, 911), (1, 1, 1), (4096, 2048, 512),
    ]

    @pytest.mark.parametrize("config_index", CONFIGS)
    def test_candidate_times_bit_identical_to_scalar(self, config_index):
        config = paper_config(config_index)
        for m, n, k in self.PROBLEMS:
            times = candidate_times(m, n, k, config)
            for row, variant in enumerate(GEMM_VARIANTS):
                reference, _, _ = time_work(
                    build_gemm(variant, m, n, k).work, config
                )
                assert times[row] == reference, (m, n, k, variant)

    @pytest.mark.parametrize("config_index", CONFIGS)
    def test_select_matches_reference_loop(self, config_index):
        config = paper_config(config_index)
        for m, n, k in self.PROBLEMS:
            assert _select(m, n, k, config) is _select_reference(m, n, k, config)

    @pytest.mark.parametrize("config_index", CONFIGS)
    def test_autotune_charge_bit_identical(self, config_index):
        config = paper_config(config_index)
        scalar = Autotuner(config, batched=False)
        vectorized = Autotuner(config, batched=True)
        for shape in self.PROBLEMS:
            assert vectorized.charge(*shape) == scalar.charge(*shape)
        assert vectorized.total_cost_s == scalar.total_cost_s
        # Re-charging is free in both modes.
        assert vectorized.charge(*self.PROBLEMS[0]) == 0.0
        assert scalar.charge(*self.PROBLEMS[0]) == 0.0


class TestPlanCacheSharing:
    def test_executors_share_lowering_for_one_model(self):
        """Two executors over one model instance (the engine's pattern:
        ``resolve`` memoises one model per scenario) compile each shape
        once process-wide."""
        from repro.models.plan import PLAN_CACHE

        model = build_gnmt()
        device = GpuDevice(paper_config(1))
        inputs = IterationInputs(batch=8, seq_len=333, tgt_len=331)
        first = IterationExecutor(model, device)
        second = IterationExecutor(model, device)
        before = PLAN_CACHE.stats()
        result_a = first.run(inputs)
        mid = PLAN_CACHE.stats()
        result_b = second.run(inputs)
        after = PLAN_CACHE.stats()
        assert mid["misses"] == before["misses"] + 1
        # The second executor re-uses the compiled plan: a hit, no miss.
        assert after["misses"] == mid["misses"]
        assert after["hits"] == mid["hits"] + 1
        assert_results_identical(result_a, result_b)

    def test_models_with_equal_param_counts_never_collide(self):
        """Regression: head count changes a transformer's kernel shapes
        but not its parameter count, so a structural key derived from
        ``param_count`` alone would serve one model's plans to the
        other.  The default per-instance key must keep them apart and
        each batched result equal to its own scalar reference."""
        wide = build_transformer(heads=12)
        narrow = build_transformer(heads=8)
        assert wide.param_count() == narrow.param_count()
        assert wide.plan_key() != narrow.plan_key()

        device = GpuDevice(paper_config(1))
        inputs = IterationInputs(batch=8, seq_len=96, tgt_len=96)
        wide_batched = IterationExecutor(wide, device, batched=True).run(inputs)
        narrow_batched = IterationExecutor(narrow, device, batched=True).run(inputs)
        narrow_scalar = IterationExecutor(narrow, device, batched=False).run(inputs)
        assert_results_identical(narrow_batched, narrow_scalar)
        assert wide_batched.time_s != narrow_batched.time_s

    def test_unpickled_model_draws_a_fresh_plan_token(self):
        """Plan tokens are process-local: a model shipped to another
        process must not collide there with a locally built model that
        happened to draw the same token number."""
        import pickle

        model = build_transformer(heads=12)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.plan_key() != model.plan_key()
        assert "_plan_token" not in model.__getstate__()
