"""Unit tests for the attention layer."""

import pytest

from repro.errors import LoweringError
from repro.hw.config import paper_config
from repro.models.layers.attention import AttentionLayer

CONFIG = paper_config(1)


class TestAttention:
    def layer(self, src: int = 50) -> AttentionLayer:
        attention = AttentionLayer("attn", hidden=1024)
        attention.bind_source(src)
        return attention

    def test_requires_bound_source(self):
        attention = AttentionLayer("attn", hidden=64)
        with pytest.raises(LoweringError, match="bind_source"):
            list(attention.forward(4, 5, CONFIG))

    def test_per_step_kernels_count_decoder_steps(self):
        counts = [
            count for inv, count in self.layer().forward(64, 30, CONFIG)
            if inv.group == "GEMM-2"
        ]
        assert counts and all(count == 30 for count in counts)

    def test_quadratic_traffic_term(self, device1):
        # The additive-attention tensor is [B, src, H]: doubling both
        # source and target more than doubles attention time.
        def total(src, tgt):
            layer = self.layer(src)
            return sum(
                device1.run(inv.work).time_s * count
                for inv, count in layer.forward(64, tgt, CONFIG)
            )

        assert total(100, 100) > 2.5 * total(50, 50)

    def test_source_length_in_score_shape(self):
        shapes = [
            inv.shape for inv, _ in self.layer(77).forward(64, 10, CONFIG)
            if inv.op == "gemm"
        ]
        assert any(77 in shape for shape in shapes)

    def test_rebinding_changes_lowering(self):
        attention = AttentionLayer("attn", hidden=64)
        attention.bind_source(10)
        small = sum(inv.flops * c for inv, c in attention.forward(4, 5, CONFIG))
        attention.bind_source(100)
        large = sum(inv.flops * c for inv, c in attention.forward(4, 5, CONFIG))
        assert large > small

    def test_invalid_source_rejected(self):
        attention = AttentionLayer("attn", hidden=64)
        with pytest.raises(LoweringError):
            attention.bind_source(0)

    def test_param_count(self):
        assert AttentionLayer("attn", 64).param_count() == 64 * 64 + 64 + 2 * 64 * 64
