"""Unit tests for LSTM/GRU layers — the heterogeneity mechanism."""


from repro.hw.config import paper_config
from repro.models.layers.recurrent import GRULayer, LSTMLayer

CONFIG = paper_config(1)


class TestLSTMForward:
    def test_per_step_kernels_scale_in_count(self):
        layer = LSTMLayer("lstm", 1024, 1024)
        counts = {
            inv.group: count
            for inv, count in layer.forward(64, 100, CONFIG)
            if inv.op == "gemm"
        }
        assert counts["GEMM-1"] == 1     # batched input projection
        assert counts["GEMM-2"] == 100   # per-step recurrent GEMM

    def test_batched_kernel_scales_in_size(self):
        layer = LSTMLayer("lstm", 1024, 1024)

        def input_proj(steps):
            for inv, _ in layer.forward(64, steps, CONFIG):
                if inv.group == "GEMM-1":
                    return inv
            raise AssertionError("no batched GEMM")

        assert input_proj(100).shape[0] == 10 * input_proj(10).shape[0]

    def test_recurrent_gemm_fixed_size(self):
        layer = LSTMLayer("lstm", 1024, 1024)

        def recurrent(steps):
            for inv, _ in layer.forward(64, steps, CONFIG):
                if inv.group == "GEMM-2":
                    return inv
            raise AssertionError("no recurrent GEMM")

        # Key Observation: per-step kernels keep their shape across SLs.
        assert recurrent(10).shape == recurrent(200).shape == (64, 4096, 1024)

    def test_gate_fusion_per_step(self):
        layer = LSTMLayer("lstm", 256, 256)
        gate_counts = [
            count for inv, count in layer.forward(8, 37, CONFIG)
            if inv.op == "lstm_gates"
        ]
        assert gate_counts == [37]


class TestBidirectional:
    def test_doubles_directions(self):
        uni = LSTMLayer("uni", 256, 256)
        bi = LSTMLayer("bi", 256, 256, bidirectional=True)
        uni_gemms = sum(
            count for inv, count in uni.forward(8, 10, CONFIG) if inv.op == "gemm"
        )
        bi_gemms = sum(
            count for inv, count in bi.forward(8, 10, CONFIG) if inv.op == "gemm"
        )
        assert bi_gemms == 2 * uni_gemms

    def test_concat_emitted(self):
        bi = LSTMLayer("bi", 256, 256, bidirectional=True)
        ops = [inv.op for inv, _ in bi.forward(8, 10, CONFIG)]
        assert "concat" in ops

    def test_out_features(self):
        assert LSTMLayer("bi", 256, 300, bidirectional=True).out_features == 600
        assert LSTMLayer("uni", 256, 300).out_features == 300

    def test_param_count_doubles(self):
        uni = LSTMLayer("uni", 256, 256)
        bi = LSTMLayer("bi", 256, 256, bidirectional=True)
        assert bi.param_count() == 2 * uni.param_count()


class TestGRUvsLSTM:
    def test_gru_has_three_gates(self):
        gru = GRULayer("gru", 1600, 800)
        gemm_n = next(
            inv.shape[1] for inv, _ in gru.forward(64, 10, CONFIG)
            if inv.op == "gemm"
        )
        assert gemm_n == 3 * 800

    def test_lstm_has_four_gates(self):
        lstm = LSTMLayer("lstm", 1024, 1024)
        gemm_n = next(
            inv.shape[1] for inv, _ in lstm.forward(64, 10, CONFIG)
            if inv.op == "gemm"
        )
        assert gemm_n == 4 * 1024

    def test_lstm_params_exceed_gru(self):
        assert (
            LSTMLayer("l", 512, 512).param_count()
            > GRULayer("g", 512, 512).param_count()
        )

    def test_gru_gate_ops_named(self):
        gru = GRULayer("gru", 64, 64)
        ops = {inv.op for inv, _ in gru.forward(4, 5, CONFIG)}
        assert "gru_gates" in ops


class TestBackward:
    def test_backward_heavier_than_forward(self, device1):
        layer = LSTMLayer("lstm", 1024, 1024)

        def total(stream):
            return sum(
                device1.run(inv.work).time_s * count for inv, count in stream
            )

        fwd = total(layer.forward(64, 50, CONFIG))
        bwd = total(layer.backward(64, 50, CONFIG))
        assert bwd > fwd

    def test_backward_includes_weight_gradients(self):
        layer = LSTMLayer("lstm", 512, 256)
        shapes = [
            inv.shape for inv, _ in layer.backward(8, 10, CONFIG)
            if inv.op == "gemm"
        ]
        assert (512, 1024, 80) in shapes  # dW_input
        assert (256, 1024, 80) in shapes  # dW_recurrent
