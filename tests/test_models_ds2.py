"""Unit tests for the DS2 model builder."""


from repro.hw.config import paper_config
from repro.models.ds2 import build_ds2
from repro.models.layers.conv2d import Conv2dLayer
from repro.models.layers.recurrent import GRULayer
from repro.models.spec import IterationInputs

CONFIG = paper_config(1)


class TestStructure:
    def test_paper_layer_inventory(self):
        model = build_ds2()
        convs = [l for l in model.layers if isinstance(l, Conv2dLayer)]
        grus = [l for l in model.layers if isinstance(l, GRULayer)]
        assert len(convs) == 2
        assert len(grus) == 5
        assert all(gru.bidirectional for gru in grus)

    def test_paper_dimensions(self):
        model = build_ds2()
        assert model.alphabet == 29
        assert model.hidden == 800
        assert model.freq_bins == 161

    def test_classifier_features_are_bidirectional_width(self):
        model = build_ds2()
        classifier = model.layers[-1]
        assert classifier.in_features == 1600
        assert classifier.out_features == 29


class TestLowering:
    def test_conv_stride_halves_steps(self):
        model = build_ds2()
        # SL 804 frames reach the GRUs (and classifier) as 402 steps.
        assert model.final_steps(IterationInputs(64, 804)) == 402

    def test_classifier_gemm_matches_table1(self):
        model = build_ds2()
        schedule = model.lower_iteration(IterationInputs(64, 804), CONFIG)
        assert (29, 25728, 1600) in schedule.gemm_shapes()
        schedule_short = model.lower_iteration(IterationInputs(64, 118), CONFIG)
        assert (29, 3776, 1600) in schedule_short.gemm_shapes()

    def test_runtime_scales_with_frames(self, device1):
        model = build_ds2()

        def iteration_time(seq_len):
            schedule = model.lower_iteration(IterationInputs(64, seq_len), CONFIG)
            return sum(device1.run(inv.work).time_s * c for inv, c in schedule)

        assert iteration_time(800) > 3 * iteration_time(200)

    def test_ctc_loss_present(self):
        model = build_ds2()
        ops = {
            inv.op
            for inv, _ in model.lower_iteration(IterationInputs(64, 100), CONFIG)
        }
        assert "ctc_alpha" in ops and "ctc_beta" in ops

    def test_param_count_magnitude(self):
        # DS2 at these dimensions carries tens of millions of params.
        assert 30e6 < build_ds2().param_count() < 120e6

    def test_sequence_dependent(self):
        assert build_ds2().sequence_dependent
