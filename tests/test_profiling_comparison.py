"""Unit tests for repro.profiling.comparison."""

import pytest

from repro.profiling.comparison import kernel_overlap, runtime_share_distance
from repro.profiling.profiles import ExecutionProfile


def profile_from(kernel_times: dict[tuple[str, str], float]) -> ExecutionProfile:
    p = ExecutionProfile()
    for (name, group), time_s in kernel_times.items():
        p.record(name, group, time_s=time_s, flops=1.0)
    return p


class TestKernelOverlap:
    def test_identical_profiles(self):
        p = profile_from({("a", "g"): 1.0, ("b", "g"): 1.0})
        overlap = kernel_overlap(p, p)
        assert overlap.common == 2
        assert overlap.exclusive_fraction == 0.0

    def test_partial_overlap(self):
        a = profile_from({("a", "g"): 1.0, ("b", "g"): 1.0})
        b = profile_from({("b", "g"): 1.0, ("c", "g"): 1.0})
        overlap = kernel_overlap(a, b)
        assert overlap.common == 1
        assert overlap.only_in_first == 1
        assert overlap.only_in_second == 1
        assert overlap.exclusive_fraction == pytest.approx(2 / 3)

    def test_disjoint(self):
        a = profile_from({("a", "g"): 1.0})
        b = profile_from({("b", "g"): 1.0})
        assert kernel_overlap(a, b).common_fraction == 0.0


class TestRuntimeShareDistance:
    def test_identical_is_zero(self):
        p = profile_from({("a", "G1"): 0.7, ("b", "G2"): 0.3})
        assert runtime_share_distance(p, p) == pytest.approx(0.0)

    def test_disjoint_groups_is_one(self):
        a = profile_from({("a", "G1"): 1.0})
        b = profile_from({("b", "G2"): 1.0})
        assert runtime_share_distance(a, b) == pytest.approx(1.0)

    def test_symmetric(self):
        a = profile_from({("a", "G1"): 0.7, ("b", "G2"): 0.3})
        b = profile_from({("a", "G1"): 0.4, ("b", "G2"): 0.6})
        assert runtime_share_distance(a, b) == pytest.approx(
            runtime_share_distance(b, a)
        )

    def test_kernel_granularity(self):
        a = profile_from({("a", "G"): 0.5, ("b", "G"): 0.5})
        b = profile_from({("a", "G"): 1.0})
        assert runtime_share_distance(a, b, by="group") == pytest.approx(0.0)
        assert runtime_share_distance(a, b, by="kernel") == pytest.approx(0.5)

    def test_unknown_granularity_rejected(self):
        p = profile_from({("a", "G"): 1.0})
        with pytest.raises(ValueError):
            runtime_share_distance(p, p, by="op")
