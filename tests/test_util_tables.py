"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "x"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # All rows padded to the same width.
        assert len(lines[1]) == len(lines[2].rstrip()) or len(lines) == 4

    def test_title_prepended(self):
        text = render_table(["c"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError, match="column"):
            render_table([], [])

    def test_no_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text
