"""Unit tests for multiplexed streaming sessions."""

import pytest

from repro.api.cache import TraceCache
from repro.api.engine import AnalysisEngine
from repro.api.spec import AnalysisSpec
from repro.errors import ConfigurationError
from repro.serve.protocol import NotFoundError, ProtocolError
from repro.serve.sessions import SessionManager
from repro.stream.spec import StreamSpec

#: A perfectly periodic live feed: per-SL means never move, so the
#: identification converges as soon as patience allows.
CYCLE = [
    {"seq_len": 10, "time_s": 0.1},
    {"seq_len": 20, "time_s": 0.2},
    {"seq_len": 30, "time_s": 0.3},
    {"seq_len": 40, "time_s": 0.4},
]


def stream_spec(**kwargs) -> StreamSpec:
    kwargs.setdefault("cadence", 20)
    kwargs.setdefault("patience", 3)
    return StreamSpec(
        analysis=AnalysisSpec(network="gnmt", scale=0.02), **kwargs
    )


@pytest.fixture()
def manager() -> SessionManager:
    return SessionManager(AnalysisEngine(cache=TraceCache()))


class TestLiveSessions:
    def test_periodic_feed_converges(self, manager):
        session = manager.create(stream_spec())
        snapshot = session.snapshot()
        assert snapshot["state"] == "open"
        assert snapshot["replay"] is False
        assert snapshot["iterations_consumed"] == 0

        for _ in range(20):
            snapshot = session.feed_records(CYCLE * 5)
            if snapshot["converged"]:
                break
        assert snapshot["converged"] is True
        assert snapshot["checks"] >= 3
        assert snapshot["last_check"]["stable_checks"] >= 3

        result = session.finish()
        assert result["converged"] is True
        assert result["iterations_consumed"] == snapshot["iterations_consumed"]
        assert {point["seq_len"] for point in result["points"]} <= {
            10, 20, 30, 40,
        }
        assert session.snapshot()["state"] == "finished"

    def test_finish_is_idempotent(self, manager):
        session = manager.create(stream_spec())
        session.feed_records(CYCLE * 25)
        assert session.finish() == session.finish()

    def test_feed_after_finish_rejected(self, manager):
        session = manager.create(stream_spec())
        session.feed_records(CYCLE)
        session.finish()
        with pytest.raises(ConfigurationError, match="finished"):
            session.feed_records(CYCLE)

    def test_finish_before_any_feed_rejected(self, manager):
        session = manager.create(stream_spec())
        with pytest.raises(ConfigurationError):
            session.finish()

    def test_advance_rejected_for_live_sessions(self, manager):
        session = manager.create(stream_spec())
        with pytest.raises(ProtocolError, match="live"):
            session.advance(10)


class TestReplaySessions:
    def test_replay_draws_from_the_cached_epoch(self, manager):
        session = manager.create(stream_spec(), replay=True)
        snapshot = session.snapshot()
        assert snapshot["replay"] is True
        epoch = snapshot["epoch_iterations"]
        assert epoch > 0
        assert snapshot["cursor"] == 0

        snapshot = session.advance(epoch)
        assert snapshot["cursor"] == epoch
        assert snapshot["iterations_consumed"] == epoch
        result = session.finish()
        assert result["iterations_consumed"] == epoch

    def test_advance_clamps_to_the_epoch(self, manager):
        session = manager.create(stream_spec(), replay=True)
        epoch = session.snapshot()["epoch_iterations"]
        snapshot = session.advance(epoch + 1000)
        assert snapshot["cursor"] == epoch

    def test_exhausted_replay_rejects_more(self, manager):
        session = manager.create(stream_spec(), replay=True)
        session.advance(session.snapshot()["epoch_iterations"])
        with pytest.raises(ConfigurationError, match="exhausted"):
            session.advance(1)

    def test_records_rejected_for_replay_sessions(self, manager):
        session = manager.create(stream_spec(), replay=True)
        with pytest.raises(ProtocolError, match="replay"):
            session.feed_records(CYCLE)

    def test_advance_must_be_positive(self, manager):
        session = manager.create(stream_spec(), replay=True)
        with pytest.raises(ProtocolError, match=">= 1"):
            session.advance(0)

    def test_concurrent_replay_sessions_share_one_simulation(self):
        engine = AnalysisEngine(cache=TraceCache())
        manager = SessionManager(engine)
        first = manager.create(stream_spec(), replay=True)
        second = manager.create(stream_spec(), replay=True)
        stats = engine.cache.stats()
        assert stats["misses"] == 1  # one simulation for both sessions
        assert stats["hits"] >= 1

        # Cursors advance independently.
        first.advance(8)
        assert first.snapshot()["cursor"] == 8
        assert second.snapshot()["cursor"] == 0


class TestSessionManager:
    def test_ids_and_lookup(self, manager):
        first = manager.create(stream_spec())
        second = manager.create(stream_spec())
        assert (first.id, second.id) == ("s-1", "s-2")
        assert manager.get("s-2") is second
        assert [s.id for s in manager.sessions()] == ["s-1", "s-2"]

    def test_unknown_session_raises(self, manager):
        with pytest.raises(NotFoundError, match="s-9"):
            manager.get("s-9")

    def test_close_removes(self, manager):
        session = manager.create(stream_spec())
        manager.close(session.id)
        with pytest.raises(NotFoundError):
            manager.get(session.id)
        with pytest.raises(NotFoundError):
            manager.close(session.id)

    def test_session_cap(self):
        manager = SessionManager(AnalysisEngine(), max_sessions=1)
        manager.create(stream_spec())
        with pytest.raises(ConfigurationError, match="session table full"):
            manager.create(stream_spec())

    def test_bad_cap_rejected(self):
        with pytest.raises(ConfigurationError, match="max_sessions"):
            SessionManager(AnalysisEngine(), max_sessions=0)

    def test_snapshot_counts(self, manager):
        live = manager.create(stream_spec())
        manager.create(stream_spec(), replay=True)
        for _ in range(20):
            if live.feed_records(CYCLE * 5)["converged"]:
                break
        snapshot = manager.snapshot()
        assert snapshot["open"] == 2
        assert snapshot["opened_total"] == 2
        assert snapshot["converged"] == 1
