"""Unit tests for repro.data.dataset."""

import pytest

from repro.data.dataset import Sample, SequenceDataset
from repro.errors import ConfigurationError


def dataset(lengths=(5, 5, 10, 20), vocab=100) -> SequenceDataset:
    return SequenceDataset(
        name="toy",
        samples=tuple(Sample(length=l) for l in lengths),
        vocab=vocab,
    )


class TestSample:
    def test_positive_length_required(self):
        with pytest.raises(ConfigurationError):
            Sample(length=0)

    def test_positive_target_required(self):
        with pytest.raises(ConfigurationError):
            Sample(length=5, tgt_length=0)


class TestSequenceDataset:
    def test_lengths_array(self):
        assert list(dataset().lengths) == [5, 5, 10, 20]

    def test_histogram(self):
        assert dataset().length_histogram() == {5: 2, 10: 1, 20: 1}

    def test_has_targets(self):
        paired = SequenceDataset(
            "mt", (Sample(3, 4), Sample(5, 6)), vocab=10
        )
        assert paired.has_targets
        assert not dataset().has_targets

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SequenceDataset("empty", (), vocab=10)

    def test_invalid_vocab_rejected(self):
        with pytest.raises(ConfigurationError):
            dataset(vocab=0)


class TestSplit:
    def test_partition(self):
        big = dataset(lengths=tuple(range(1, 101)))
        train, evaluation = big.split(0.1, seed=3)
        assert len(train) + len(evaluation) == 100
        assert len(evaluation) == 10

    def test_deterministic(self):
        big = dataset(lengths=tuple(range(1, 51)))
        first = big.split(0.2, seed=9)
        second = big.split(0.2, seed=9)
        assert first[1].lengths.tolist() == second[1].lengths.tolist()

    def test_vocab_preserved(self):
        # Key Observation 6: sampling must keep the full vocabulary.
        train, evaluation = dataset().split(0.25, seed=0)
        assert train.vocab == evaluation.vocab == 100

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            dataset().split(0.0, seed=0)
        with pytest.raises(ConfigurationError):
            dataset().split(1.0, seed=0)
