"""Unit tests for the async job queue and the latency metrics."""

import threading

import numpy as np
import pytest

from repro.api.spec import AnalysisSpec
from repro.errors import ReproError
from repro.serve.metrics import LatencyHistogram, MetricsRegistry, percentile
from repro.serve.protocol import JobRequest, NotFoundError
from repro.serve.queue import JOB_STATES, JobCancelled, JobQueue


def request() -> JobRequest:
    return JobRequest(
        kind="analyze", spec=AnalysisSpec(network="gnmt", scale=0.02)
    )


class TestSubmitAndGet:
    def test_lifecycle_queued_to_done(self):
        queue = JobQueue()
        job = queue.submit(request())
        assert job.id == "job-1"
        assert job.state == "queued"
        assert queue.get(job.id) is job

        claimed = queue.next_job(timeout=0.1)
        assert claimed is job
        assert job.state == "running"
        assert job.started_s is not None

        queue.finish(job, {"answer": 42})
        assert job.state == "done"
        assert job.result == {"answer": 42}
        assert job.finished_s is not None

    def test_ids_are_sequential(self):
        queue = JobQueue()
        assert [queue.submit(request()).id for _ in range(3)] == [
            "job-1", "job-2", "job-3",
        ]

    def test_fifo_claim_order(self):
        queue = JobQueue()
        first = queue.submit(request())
        second = queue.submit(request())
        assert queue.next_job(timeout=0.1) is first
        assert queue.next_job(timeout=0.1) is second

    def test_unknown_job_raises_not_found(self):
        with pytest.raises(NotFoundError, match="job-9"):
            JobQueue().get("job-9")

    def test_status_snapshot_never_includes_result(self):
        queue = JobQueue()
        job = queue.submit(request())
        queue.next_job(timeout=0.1)
        queue.finish(job, {"huge": "payload"})
        payload = job.to_dict()
        assert payload["state"] == "done"
        assert "result" not in payload
        assert "huge" not in str(payload)

    def test_failed_jobs_carry_one_line_errors(self):
        queue = JobQueue()
        job = queue.submit(request())
        queue.next_job(timeout=0.1)
        queue.fail(job, ValueError("boom\nacross\nlines"))
        payload = job.to_dict()
        assert payload["error"] == {
            "type": "ValueError", "message": "boom across lines",
        }


class TestCancellation:
    def test_cancel_queued_is_immediate(self):
        queue = JobQueue()
        job = queue.submit(request())
        cancelled = queue.cancel(job.id)
        assert cancelled is job
        assert job.state == "cancelled"
        # The pending deque no longer offers it to workers.
        assert queue.next_job(timeout=0.05) is None

    def test_cancel_running_sets_the_event(self):
        queue = JobQueue()
        job = queue.submit(request())
        queue.next_job(timeout=0.1)
        queue.cancel(job.id)
        assert job.state == "running"  # cooperative: worker must notice
        with pytest.raises(JobCancelled):
            job.check_cancelled()
        queue.mark_cancelled(job)
        assert job.state == "cancelled"

    def test_cancel_terminal_is_idempotent(self):
        queue = JobQueue()
        job = queue.submit(request())
        queue.next_job(timeout=0.1)
        queue.finish(job, {})
        assert queue.cancel(job.id).state == "done"

    def test_cancel_unknown_job_raises(self):
        with pytest.raises(NotFoundError):
            JobQueue().cancel("job-7")

    def test_checkpoint_is_quiet_without_cancel(self):
        queue = JobQueue()
        job = queue.submit(request())
        job.check_cancelled()  # no exception


class TestDepthAndClose:
    def test_bounded_queue_refuses_excess(self):
        queue = JobQueue(max_depth=1)
        queue.submit(request())
        with pytest.raises(ReproError, match="queue full"):
            queue.submit(request())

    def test_claiming_frees_depth(self):
        queue = JobQueue(max_depth=1)
        queue.submit(request())
        queue.next_job(timeout=0.1)
        queue.submit(request())  # no error: pending slot freed

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            JobQueue(max_depth=0)

    def test_close_rejects_submissions(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(ReproError, match="shut down"):
            queue.submit(request())

    def test_close_wakes_blocked_workers(self):
        queue = JobQueue()
        claimed = []
        worker = threading.Thread(
            target=lambda: claimed.append(queue.next_job())
        )
        worker.start()
        queue.close()
        worker.join(timeout=5)
        assert not worker.is_alive()
        assert claimed == [None]

    def test_snapshot_counts_states(self):
        queue = JobQueue()
        done = queue.submit(request())
        queue.submit(request())
        queue.next_job(timeout=0.1)
        queue.finish(done, {})
        snapshot = queue.snapshot()
        assert snapshot["depth"] == 1
        assert snapshot["jobs"] == 2
        assert set(snapshot["states"]) == set(JOB_STATES)
        assert snapshot["states"]["done"] == 1
        assert snapshot["states"]["queued"] == 1


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile(samples, 0) == 1.0

    def test_single_sample(self):
        assert percentile([3.5], 99) == 3.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101)


class TestLatencyHistogram:
    def test_empty_snapshot_is_zeroes(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0,
        }

    def test_counts_and_mean(self):
        histogram = LatencyHistogram()
        for seconds in (0.001, 0.002, 0.003):
            histogram.observe(seconds)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["mean_ms"] == pytest.approx(2.0)
        assert snapshot["max_ms"] == pytest.approx(3.0)

    def test_quantiles_are_ordered(self):
        histogram = LatencyHistogram()
        for index in range(100):
            histogram.observe(0.0005 * (index + 1))
        snapshot = histogram.snapshot()
        assert snapshot["p50_ms"] <= snapshot["p95_ms"] <= snapshot["p99_ms"]
        assert snapshot["p99_ms"] <= snapshot["max_ms"] * 2  # bucket bound

    def test_negative_observations_clamp(self):
        histogram = LatencyHistogram()
        histogram.observe(-1.0)
        assert histogram.snapshot()["count"] == 1

    def test_observe_many_bit_identical_to_scalar_loop(self):
        rng = np.random.default_rng(7)
        # Mix of negatives (clamped), tiny, typical and over-range values.
        seconds = np.concatenate(
            (
                rng.uniform(-0.01, 0.5, 400),
                np.asarray([0.0, -1.0, 1e-9, 1e-4, 2e-4, 300.0]),
            )
        )
        bulk = LatencyHistogram()
        bulk.observe_many(seconds)
        scalar = LatencyHistogram()
        for value in seconds.tolist():
            scalar.observe(value)
        assert bulk._counts == scalar._counts
        assert bulk.count == scalar.count
        assert bulk.sum_s == scalar.sum_s  # exact, not approx
        assert bulk.max_s == scalar.max_s
        assert bulk.snapshot() == scalar.snapshot()

    def test_observe_many_chunked_continuation(self):
        rng = np.random.default_rng(11)
        seconds = rng.uniform(0.0, 2.0, 257)
        whole = LatencyHistogram()
        whole.observe_many(seconds)
        chunked = LatencyHistogram()
        for lo in range(0, seconds.size, 64):
            chunked.observe_many(seconds[lo:lo + 64])
        assert chunked._counts == whole._counts
        assert chunked.sum_s == whole.sum_s
        assert chunked.snapshot() == whole.snapshot()

    def test_observe_many_empty_is_a_no_op(self):
        histogram = LatencyHistogram()
        histogram.observe(0.001)
        before = histogram.snapshot()
        histogram.observe_many(np.asarray([], dtype=np.float64))
        assert histogram.snapshot() == before

    def test_observe_many_importable_without_serve(self):
        # The histogram lives in an import-light module: latency
        # snapshots must not drag in the HTTP serving package.
        from repro.util.histogram import LatencyHistogram as Light

        assert Light is LatencyHistogram

    def test_thread_safety_exact_count(self):
        histogram = LatencyHistogram()

        def hammer():
            for _ in range(500):
                histogram.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.snapshot()["count"] == 4000


class TestMetricsRegistry:
    def test_per_endpoint_histograms(self):
        registry = MetricsRegistry()
        registry.observe("GET /stats", 0.001)
        registry.observe("GET /stats", 0.002)
        registry.observe("POST /jobs", 0.003)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"GET /stats", "POST /jobs"}
        assert snapshot["GET /stats"]["count"] == 2
        assert snapshot["POST /jobs"]["count"] == 1

    def test_empty_registry_snapshot(self):
        assert MetricsRegistry().snapshot() == {}
