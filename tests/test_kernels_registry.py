"""Unit tests for repro.kernels.registry and autotune."""

import pytest

from repro.hw.config import paper_config
from repro.kernels.autotune import Autotuner
from repro.kernels.elementwise import elementwise
from repro.kernels.gemm import gemm
from repro.kernels.reduction import reduction
from repro.kernels.registry import KernelRegistry, default_registry


class TestRegistry:
    def test_classifies_gemm(self):
        registry = default_registry()
        inv = gemm(256, 256, 256, paper_config(1))
        assert registry.family_of(inv.name) == "gemm"

    def test_classifies_elementwise(self):
        registry = default_registry()
        assert registry.family_of(elementwise("relu", 64).name) == "elementwise"

    def test_classifies_reduction(self):
        registry = default_registry()
        assert registry.family_of(reduction("sum", 4, 64).name) == "reduction"

    def test_unknown_name(self):
        assert default_registry().family_of("mystery_kernel") == "unknown"

    def test_duplicate_family_rejected(self):
        registry = KernelRegistry()
        registry.register_family("f", ["p"])
        with pytest.raises(ValueError, match="already registered"):
            registry.register_family("f", ["q"])

    def test_empty_prefixes_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            KernelRegistry().register_family("f", [])

    def test_unknown_family_lookup_raises(self):
        with pytest.raises(KeyError):
            default_registry().prefixes("nope")


class TestAutotuner:
    def test_first_charge_costs(self):
        tuner = Autotuner(paper_config(1))
        assert tuner.charge(256, 256, 256) > 0.0

    def test_second_charge_free(self):
        tuner = Autotuner(paper_config(1))
        tuner.charge(256, 256, 256)
        assert tuner.charge(256, 256, 256) == 0.0

    def test_total_accumulates(self):
        tuner = Autotuner(paper_config(1))
        first = tuner.charge(256, 256, 256)
        second = tuner.charge(512, 512, 512)
        assert tuner.total_cost_s == pytest.approx(first + second)
        assert tuner.shapes_tuned == 2

    def test_reset(self):
        tuner = Autotuner(paper_config(1))
        tuner.charge(64, 64, 64)
        tuner.reset()
        assert tuner.shapes_tuned == 0
        assert tuner.charge(64, 64, 64) > 0.0

    def test_skinny_shapes_prune_candidates(self):
        # A skinny problem tunes fewer (and cheaper) variants than a
        # large square one of comparable FLOPs.
        tuner = Autotuner(paper_config(1))
        skinny = tuner.charge(4, 1 << 16, 1024)
        tuner2 = Autotuner(paper_config(1))
        square = tuner2.charge(512, 512, 1024)
        assert skinny > 0 and square > 0
