"""Unit tests for the Transformer encoder (paper §VII-B)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.config import paper_config
from repro.models.layers.transformer import TransformerEncoderLayer
from repro.models.spec import IterationInputs
from repro.models.transformer import build_transformer

CONFIG = paper_config(1)


class TestEncoderLayer:
    def test_attention_work_quadratic_in_sl(self):
        layer = TransformerEncoderLayer("enc", hidden=768, heads=12)

        def flops(steps):
            return sum(
                inv.flops * count for inv, count in layer.forward(8, steps, CONFIG)
            )

        # FFN is linear, attention quadratic: doubling SL more than
        # doubles total work but less than quadruples it.
        assert 2.0 < flops(512) / flops(256) < 4.0

    def test_no_per_step_kernels(self):
        # Unlike RNNs, every kernel launches exactly once.
        layer = TransformerEncoderLayer("enc", hidden=256, heads=4)
        assert all(
            count == 1 or inv.op.startswith("ln")
            for inv, count in layer.forward(8, 64, CONFIG)
        )

    def test_hidden_divisible_by_heads_required(self):
        with pytest.raises(ConfigurationError, match="divisible"):
            TransformerEncoderLayer("enc", hidden=100, heads=12)

    def test_param_count_bert_base_layer(self):
        layer = TransformerEncoderLayer("enc", hidden=768, heads=12)
        # BERT-base layer: ~7.1M parameters.
        assert 6.5e6 < layer.param_count() < 8e6


class TestTransformerModel:
    def test_bert_base_param_magnitude(self):
        model = build_transformer()
        assert 80e6 < model.param_count() < 180e6

    def test_runtime_grows_superlinearly(self, device1):
        model = build_transformer(layers=2)

        def iteration_time(steps):
            schedule = model.lower_iteration(IterationInputs(16, steps), CONFIG)
            return sum(device1.run(inv.work).time_s * c for inv, c in schedule)

        assert iteration_time(512) > 2.0 * iteration_time(256)

    def test_sequence_dependent(self):
        assert build_transformer(layers=1).sequence_dependent

    def test_mlm_head_over_all_positions(self):
        model = build_transformer(layers=1, vocab=1000, hidden=128, heads=8)
        schedule = model.lower_iteration(IterationInputs(4, 32), CONFIG)
        # MLM head forward: [vocab, batch*steps, hidden].
        assert (1000, 4 * 32, 128) in schedule.gemm_shapes()
