"""Unit tests for repro.util.serialize."""

import pytest

from repro.errors import TraceError
from repro.util.serialize import dump_json, load_json


class TestRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "artefact.json"
        dump_json({"value": 42, "nested": {"a": [1, 2]}}, path, schema="test.v1")
        loaded = load_json(path, schema="test.v1")
        assert loaded["value"] == 42
        assert loaded["nested"] == {"a": [1, 2]}

    def test_schema_stamped(self, tmp_path):
        path = tmp_path / "artefact.json"
        dump_json({}, path, schema="test.v2")
        assert load_json(path, schema="test.v2")["schema"] == "test.v2"

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "artefact.json"
        dump_json({}, path, schema="test.v1")
        with pytest.raises(TraceError, match="expected schema"):
            load_json(path, schema="test.v2")

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "artefact.json"
        dump_json({"x": 1}, path, schema="s")
        assert load_json(path, schema="s")["x"] == 1
