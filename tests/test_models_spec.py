"""Unit tests for IterationInputs and the Model ABC contract."""

import pytest

from repro.errors import LoweringError
from repro.models.ds2 import build_ds2
from repro.models.spec import IterationInputs


class TestIterationInputs:
    def test_valid(self):
        inputs = IterationInputs(batch=64, seq_len=100, tgt_len=110)
        assert (inputs.batch, inputs.seq_len, inputs.tgt_len) == (64, 100, 110)

    def test_tgt_optional(self):
        assert IterationInputs(batch=1, seq_len=1).tgt_len is None

    def test_invalid_batch(self):
        with pytest.raises(LoweringError):
            IterationInputs(batch=0, seq_len=10)

    def test_invalid_seq_len(self):
        with pytest.raises(LoweringError):
            IterationInputs(batch=1, seq_len=0)

    def test_invalid_tgt_len(self):
        with pytest.raises(LoweringError):
            IterationInputs(batch=1, seq_len=10, tgt_len=-5)

    def test_hashable(self):
        a = IterationInputs(batch=64, seq_len=100)
        b = IterationInputs(batch=64, seq_len=100)
        assert hash(a) == hash(b)
        assert a == b


class TestModelContract:
    def test_repr_names_model(self):
        assert "ds2" in repr(build_ds2())

    def test_default_sequence_dependent(self):
        assert build_ds2().sequence_dependent
