"""Unit tests for repro.util.rng."""

import pytest

from repro.util.rng import derive_seed, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seed_different_stream(self):
        assert make_rng(7).random() != make_rng(8).random()

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            make_rng("seed")


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_base_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_result_in_range(self):
        seed = derive_seed(123456789, "component", 42)
        assert 0 <= seed < 2**63

    def test_children_independent(self):
        a = make_rng(derive_seed(5, "dataset"))
        b = make_rng(derive_seed(5, "shuffle"))
        assert a.random() != b.random()
