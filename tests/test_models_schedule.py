"""Unit tests for repro.models.schedule."""

import pytest

from repro.errors import LoweringError
from repro.hw.config import paper_config
from repro.kernels.elementwise import elementwise
from repro.kernels.gemm import gemm
from repro.models.schedule import KernelSchedule


def sample_entries():
    config = paper_config(1)
    return [
        (gemm(64, 64, 64, config), 1),
        (elementwise("relu", 4096), 10),
        (gemm(64, 64, 64, config), 2),
    ]


class TestKernelSchedule:
    def test_launch_count_includes_repeats(self):
        schedule = KernelSchedule(sample_entries())
        assert schedule.launch_count == 13

    def test_merged_coalesces_identical(self):
        schedule = KernelSchedule(sample_entries()).merged()
        assert len(schedule) == 2
        assert schedule.launch_count == 13

    def test_merged_preserves_total_flops(self):
        schedule = KernelSchedule(sample_entries())
        assert schedule.merged().total_flops == pytest.approx(schedule.total_flops)

    def test_unique_kernel_names(self):
        schedule = KernelSchedule(sample_entries())
        assert len(schedule.unique_kernel_names()) == 2

    def test_gemm_shapes_in_order(self):
        schedule = KernelSchedule(sample_entries())
        assert schedule.gemm_shapes() == [(64, 64, 64), (64, 64, 64)]

    def test_zero_count_rejected(self):
        schedule = KernelSchedule()
        with pytest.raises(LoweringError, match="positive"):
            schedule.add(elementwise("relu", 16), 0)

    def test_extend(self):
        schedule = KernelSchedule()
        schedule.extend(sample_entries())
        assert len(schedule) == 3
