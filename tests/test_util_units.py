"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    GHZ,
    GIB,
    KIB,
    MHZ,
    MIB,
    format_bytes,
    format_duration,
    format_frequency,
)


class TestConstants:
    def test_binary_ladder(self):
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_frequency_ladder(self):
        assert GHZ == 1000 * MHZ


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(16 * KIB) == "16.0 KiB"

    def test_mib(self):
        assert format_bytes(4 * MIB) == "4.0 MiB"

    def test_gib(self):
        assert format_bytes(2.5 * GIB) == "2.5 GiB"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (2.0, "2.00 s"),
            (0.5, "500.00 ms"),
            (2e-5, "20.00 us"),
            (3e-9, "3 ns"),
            (90.0, "1.50 min"),
            (7200.0, "2.00 h"),
        ],
    )
    def test_units(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_duration(-0.1)


class TestFormatFrequency:
    def test_ghz(self):
        assert format_frequency(1.6 * GHZ) == "1.60 GHz"

    def test_mhz(self):
        assert format_frequency(852 * MHZ) == "852 MHz"

    def test_hz(self):
        assert format_frequency(500) == "500 Hz"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_frequency(-1)
