"""Unit tests for the ConvS2S-style model (paper §VII-B)."""

from repro.hw.config import paper_config
from repro.models.convs2s import build_convs2s
from repro.models.spec import IterationInputs

CONFIG = paper_config(1)


class TestConvS2S:
    def test_sequence_length_preserved(self):
        model = build_convs2s(layers=3)
        # "Same" padding: the classifier sees the input length.
        assert model.final_steps(IterationInputs(8, 57)) == 57

    def test_classifier_positions_scale_with_sl(self):
        model = build_convs2s(vocab=5000, hidden=128, layers=2)
        schedule = model.lower_iteration(IterationInputs(8, 40), CONFIG)
        assert any(
            shape == (5000, 8 * 40, 128) for shape in schedule.gemm_shapes()
        )

    def test_runtime_near_linear_in_sl(self, device1):
        model = build_convs2s(layers=4)

        def iteration_time(steps):
            schedule = model.lower_iteration(IterationInputs(16, steps), CONFIG)
            return sum(device1.run(inv.work).time_s * c for inv, c in schedule)

        ratio = iteration_time(200) / iteration_time(100)
        assert 1.6 < ratio < 2.4

    def test_all_kernels_batched(self):
        model = build_convs2s(layers=2)
        schedule = model.lower_iteration(IterationInputs(8, 64), CONFIG)
        assert all(count == 1 for _, count in schedule)

    def test_param_count_positive(self):
        assert build_convs2s().param_count() > 10e6
