"""Unit tests for the simulation-export manifest (paper §VII-A)."""

import pytest

from repro.core.seqpoint import SeqPointSelector
from repro.data.batching import SortedBatching
from repro.data.librispeech import build_librispeech
from repro.errors import TraceError
from repro.hw.config import paper_config
from repro.models.ds2 import build_ds2
from repro.profiling.export import export_selection, load_manifest
from repro.train.runner import TrainingRunSimulator


@pytest.fixture(scope="module")
def ds2_selection(devices):
    model = build_ds2()
    corpus = build_librispeech(utterances=640)
    sim = TrainingRunSimulator(model, corpus, SortedBatching(64), devices[1])
    trace = sim.run_epoch(include_eval=False)
    return model, SeqPointSelector().select(trace).selection


class TestExport:
    def test_round_trip(self, ds2_selection, tmp_path):
        model, selection = ds2_selection
        path = tmp_path / "manifest.json"
        export_selection(selection, model, 64, paper_config(1), path)
        manifest = load_manifest(path)
        assert manifest["model"] == "ds2"
        assert manifest["batch_size"] == 64
        assert len(manifest["iterations"]) == len(selection)

    def test_weights_preserved(self, ds2_selection, tmp_path):
        model, selection = ds2_selection
        path = tmp_path / "manifest.json"
        export_selection(selection, model, 64, paper_config(1), path)
        manifest = load_manifest(path)
        exported = sorted(it["weight"] for it in manifest["iterations"])
        assert exported == sorted(p.weight for p in selection.points)

    def test_schedule_entries_complete(self, ds2_selection, tmp_path):
        model, selection = ds2_selection
        path = tmp_path / "manifest.json"
        export_selection(selection, model, 64, paper_config(1), path)
        manifest = load_manifest(path)
        entry = manifest["iterations"][0]["schedule"][0]
        for field in (
            "kernel", "op", "group", "shape", "launches",
            "flops", "work_items", "read_bytes", "write_bytes",
        ):
            assert field in entry

    def test_schedule_launches_match_model(self, ds2_selection, tmp_path):
        from repro.models.spec import IterationInputs

        model, selection = ds2_selection
        path = tmp_path / "manifest.json"
        export_selection(selection, model, 64, paper_config(1), path)
        manifest = load_manifest(path)
        first = manifest["iterations"][0]
        schedule = model.lower_iteration(
            IterationInputs(64, first["seq_len"], first["tgt_len"]),
            paper_config(1),
        )
        assert sum(e["launches"] for e in first["schedule"]) == schedule.launch_count

    def test_wrong_schema_rejected(self, tmp_path):
        from repro.util.serialize import dump_json

        path = tmp_path / "other.json"
        dump_json({}, path, schema="something.else")
        with pytest.raises(TraceError):
            load_manifest(path)
