"""Unit tests for repro.train.trace."""

import pytest

from repro.errors import TraceError
from repro.train.trace import TrainingTrace
from tests.conftest import make_record, make_trace


class TestTrainingTrace:
    def test_total_time(self):
        trace = make_trace([(10, 1.0), (20, 2.0), (10, 1.5)])
        assert trace.total_time_s == pytest.approx(4.5)

    def test_wall_time_includes_phases(self):
        trace = make_trace([(10, 1.0)])
        trace.autotune_s = 3.0
        trace.eval_s = 0.5
        assert trace.wall_time_s == pytest.approx(4.5)

    def test_throughput(self):
        trace = make_trace([(10, 1.0), (20, 1.0)], batch_size=32)
        assert trace.throughput == pytest.approx(64 / 2.0)

    def test_unique_seq_lens_sorted(self):
        trace = make_trace([(30, 1.0), (10, 1.0), (30, 1.0)])
        assert trace.unique_seq_lens() == [10, 30]

    def test_iteration_histogram(self):
        trace = make_trace([(10, 1.0), (10, 1.0), (20, 1.0)])
        assert trace.iteration_histogram() == {10: 2, 20: 1}

    def test_records_for_seq_len(self):
        trace = make_trace([(10, 1.0), (20, 2.0), (10, 3.0)])
        assert len(trace.records_for_seq_len(10)) == 2

    def test_empty_throughput_raises(self):
        trace = make_trace([(10, 1.0)])
        trace.records.clear()
        with pytest.raises(TraceError):
            trace.throughput

    def test_non_positive_time_rejected(self):
        with pytest.raises(TraceError):
            make_record(0, 10, 0.0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        trace = make_trace([(10, 1.0), (20, 2.0)])
        trace.autotune_s = 1.25
        trace.eval_s = 0.75
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = TrainingTrace.load(path)
        assert loaded.model_name == trace.model_name
        assert loaded.total_time_s == pytest.approx(trace.total_time_s)
        assert loaded.autotune_s == 1.25
        assert loaded.eval_s == 0.75
        assert loaded.unique_seq_lens() == trace.unique_seq_lens()

    def test_round_trip_preserves_counters_and_kernels(self, tmp_path):
        trace = make_trace([(10, 1.0)])
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = TrainingTrace.load(path)
        original = trace.records[0]
        restored = loaded.records[0]
        assert restored.counters == original.counters
        assert restored.kernel_names == original.kernel_names
        assert restored.group_times == original.group_times
