"""Unit tests for the baseline selectors (paper §VI-C)."""

import pytest

from repro.core.baselines import (
    FrequentSelector,
    MedianSelector,
    PriorSelector,
    WorstSelector,
)
from repro.core.projection import project_total
from repro.errors import SelectionError
from tests.conftest import make_trace


def skewed_trace():
    """Many short iterations, few long ones (DS2-like skew)."""
    pairs = [(10, 1.0)] * 50 + [(50, 5.0)] * 30 + [(100, 10.0)] * 20
    return make_trace(pairs)


class TestFrequent:
    def test_picks_most_frequent_sl(self):
        selection = FrequentSelector().select(skewed_trace())
        assert selection.seq_lens == (10,)

    def test_weight_is_epoch_size(self):
        selection = FrequentSelector().select(skewed_trace())
        assert selection.total_weight == 100.0

    def test_underestimates_skewed_total(self):
        selection = FrequentSelector().select(skewed_trace())
        projected = project_total(selection, lambda p: p.record.time_s)
        assert projected < skewed_trace().total_time_s


class TestMedian:
    def test_picks_median_iteration_sl(self):
        selection = MedianSelector().select(skewed_trace())
        # 100 iterations: the 50th in SL order has SL 50.
        assert selection.seq_lens == (50,)

    def test_single_point(self):
        assert len(MedianSelector().select(skewed_trace())) == 1


class TestWorst:
    def test_maximises_projection_error(self):
        trace = skewed_trace()
        worst = WorstSelector().select(trace)
        actual = trace.total_time_s
        worst_error = abs(
            project_total(worst, lambda p: p.record.time_s) - actual
        )
        for selector in (FrequentSelector(), MedianSelector()):
            other = selector.select(trace)
            other_error = abs(
                project_total(other, lambda p: p.record.time_s) - actual
            )
            assert worst_error >= other_error

    def test_picks_extreme_sl(self):
        assert WorstSelector().select(skewed_trace()).seq_lens[0] in (10, 100)


class TestPrior:
    def test_window_after_warmup(self):
        trace = make_trace([(sl, 1.0) for sl in range(1, 401)])
        selection = PriorSelector(warmup=100, window=50).select(trace)
        assert selection.seq_lens == tuple(range(101, 151))

    def test_weights_scale_to_epoch(self):
        trace = make_trace([(sl, 1.0) for sl in range(1, 401)])
        selection = PriorSelector(warmup=100, window=50).select(trace)
        assert selection.total_weight == pytest.approx(400.0)

    def test_profiles_whole_window(self):
        trace = make_trace([(10, 1.0)] * 400)
        selection = PriorSelector(warmup=100, window=50).select(trace)
        # 50 iterations are executed even though all share one SL.
        assert selection.iterations_to_profile == 50

    def test_short_trace_clamps_window(self):
        trace = make_trace([(10, 1.0)] * 30)
        selection = PriorSelector(warmup=100, window=50).select(trace)
        assert len(selection) == 30

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SelectionError):
            PriorSelector(warmup=-1)
        with pytest.raises(SelectionError):
            PriorSelector(window=0)
