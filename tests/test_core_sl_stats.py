"""Unit tests for repro.core.sl_stats."""

import pytest

from repro.core.sl_stats import SlStatistics
from repro.errors import TraceError
from tests.conftest import make_trace


class TestSlStatistics:
    def test_groups_by_seq_len(self):
        trace = make_trace([(10, 1.0), (10, 2.0), (20, 5.0)])
        stats = SlStatistics.from_trace(trace)
        assert len(stats) == 2
        ten = stats.for_seq_len(10)
        assert ten.iterations == 2
        assert ten.mean_time_s == pytest.approx(1.5)
        assert ten.total_time_s == pytest.approx(3.0)

    def test_sorted_by_seq_len(self):
        trace = make_trace([(30, 1.0), (10, 1.0), (20, 1.0)])
        stats = SlStatistics.from_trace(trace)
        assert [s.seq_len for s in stats] == [10, 20, 30]
        assert stats.min_seq_len == 10
        assert stats.max_seq_len == 30

    def test_representative_closest_to_mean(self):
        trace = make_trace([(10, 1.0), (10, 2.0), (10, 1.4)])
        stats = SlStatistics.from_trace(trace)
        # Mean 1.4667: the 1.4 record is closest.
        assert stats.for_seq_len(10).representative.time_s == pytest.approx(1.4)

    def test_totals(self):
        trace = make_trace([(10, 1.0), (20, 2.0), (30, 3.0)])
        stats = SlStatistics.from_trace(trace)
        assert stats.total_time_s == pytest.approx(6.0)
        assert stats.total_iterations == 3

    def test_unknown_seq_len_raises(self):
        stats = SlStatistics.from_trace(make_trace([(10, 1.0)]))
        with pytest.raises(TraceError):
            stats.for_seq_len(99)

    def test_empty_trace_raises(self):
        trace = make_trace([(10, 1.0)])
        trace.records.clear()
        with pytest.raises(TraceError):
            SlStatistics.from_trace(trace)
