"""Unit tests for the declarative StreamSpec."""

import json

import pytest

from repro.api.spec import AnalysisSpec
from repro.errors import ConfigurationError
from repro.stream import StreamSpec, StreamingIdentifier


def spec(**kwargs) -> StreamSpec:
    return StreamSpec(analysis=AnalysisSpec(network="gnmt"), **kwargs)


class TestConstruction:
    def test_defaults(self):
        stream = spec()
        assert stream.cadence == 64
        assert stream.patience == 3
        assert stream.rtol == 0.005
        assert stream.drift_rtol == 0.02
        assert stream.sl_rtol == 0.1
        assert stream.chunk_size == 1
        assert stream.min_iterations == 0

    def test_analysis_accepts_a_dict(self):
        stream = StreamSpec(analysis={"network": "ds2", "scale": 0.5})
        assert isinstance(stream.analysis, AnalysisSpec)
        assert stream.analysis.network == "ds2"

    def test_analysis_required_type(self):
        with pytest.raises(ConfigurationError, match="analysis"):
            StreamSpec(analysis="gnmt")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cadence": 0},
            {"cadence": 2.5},
            {"cadence": True},
            {"patience": 0},
            {"rtol": 0.0},
            {"rtol": "fast"},
            {"drift_rtol": -0.1},
            {"sl_rtol": -0.1},
            {"chunk_size": 0},
            {"min_iterations": -1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            spec(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            spec().cadence = 10


class TestRoundTrip:
    def test_json_round_trip(self):
        original = spec(cadence=100, patience=4, rtol=0.02, chunk_size=7)
        payload = json.loads(json.dumps(original.to_dict()))
        assert StreamSpec.from_dict(payload) == original

    def test_round_trip_preserves_selector_kwargs(self):
        original = StreamSpec(
            analysis=AnalysisSpec(
                network="gnmt",
                selector="kmeans",
                selector_kwargs={"k": 3, "seed": 1},
            ),
            cadence=32,
        )
        restored = StreamSpec.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert restored == original
        assert restored.analysis.selector_options == {"k": 3, "seed": 1}

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown StreamSpec"):
            StreamSpec.from_dict({"analysis": {"network": "gnmt"}, "nope": 1})

    def test_missing_analysis_rejected(self):
        with pytest.raises(ConfigurationError, match="analysis"):
            StreamSpec.from_dict({"cadence": 10})


class TestBuildIdentifier:
    def test_builds_a_wired_identifier(self):
        stream = spec(cadence=100, patience=5, rtol=0.02, sl_rtol=0.3)
        identifier = stream.build_identifier()
        assert isinstance(identifier, StreamingIdentifier)
        assert identifier.cadence == 100
        assert identifier.patience == 5
        assert identifier.rtol == 0.02
        assert identifier.sl_rtol == 0.3
        assert identifier.selector.METHOD == "seqpoint"

    def test_bad_selector_kwargs_fail_at_spec_construction(self):
        with pytest.raises(ConfigurationError, match="rejected kwargs"):
            StreamSpec(
                analysis={"network": "gnmt", "selector_kwargs": {"bogus": 1}}
            )
