"""Unit tests for repro.hw.config (paper Table II)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig, PAPER_CONFIGS, VEGA_FE, paper_config
from repro.util.units import GHZ, KIB, MHZ, MIB


class TestTableII:
    def test_five_configs(self):
        assert sorted(PAPER_CONFIGS) == [1, 2, 3, 4, 5]

    def test_config1_is_vega_fe(self):
        assert paper_config(1) is VEGA_FE
        assert VEGA_FE.gclk_hz == 1.6 * GHZ
        assert VEGA_FE.num_cus == 64
        assert VEGA_FE.l1_bytes == 16 * KIB
        assert VEGA_FE.l2_bytes == 4 * MIB

    def test_config2_halves_clock(self):
        assert paper_config(2).gclk_hz == 852 * MHZ

    def test_config3_quarters_cus(self):
        assert paper_config(3).num_cus == 16

    def test_config4_disables_l1(self):
        config = paper_config(4)
        assert config.l1_bytes == 0
        assert not config.l1_enabled
        assert config.l1_bandwidth == 0.0

    def test_config5_disables_l2(self):
        config = paper_config(5)
        assert config.l2_bytes == 0
        assert not config.l2_enabled
        assert config.l2_bandwidth == 0.0

    def test_unknown_index_raises(self):
        with pytest.raises(ConfigurationError, match="1-5"):
            paper_config(6)


class TestDerivedQuantities:
    def test_peak_flops_vega(self):
        # 64 CU x 64 lanes x 2 flops x 1.6 GHz = 13.1 TFLOP/s.
        assert VEGA_FE.peak_flops == pytest.approx(13.1072e12)

    def test_peak_flops_scales_with_clock(self):
        ratio = paper_config(2).peak_flops / VEGA_FE.peak_flops
        assert ratio == pytest.approx(852e6 / 1.6e9)

    def test_peak_flops_scales_with_cus(self):
        assert paper_config(3).peak_flops == pytest.approx(VEGA_FE.peak_flops / 4)

    def test_describe_mentions_disabled_caches(self):
        assert "L1 off" in paper_config(4).describe()
        assert "L2 off" in paper_config(5).describe()


class TestValidation:
    def test_zero_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(name="bad", gclk_hz=0)

    def test_zero_cus_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(name="bad", num_cus=0)

    def test_negative_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(name="bad", l1_bytes=-1)

    def test_config_is_hashable(self):
        assert hash(VEGA_FE) == hash(paper_config(1))
