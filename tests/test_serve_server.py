"""End-to-end tests for the analysis service.

The fast paths drive :class:`ServeApp` directly (no sockets); the
HTTP-contract tests run a real :class:`ReproServer` on an ephemeral
port and talk to it with ``urllib`` and raw sockets.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api.cache import TraceCache
from repro.api.engine import AnalysisEngine
from repro.api.parallel import SweepSpec, run_sweep
from repro.api.registry import SELECTORS
from repro.api.spec import AnalysisSpec
from repro.core.seqpoint import SeqPointSelector
from repro.errors import ConfigurationError
from repro.serve import ReproServer, ServeApp
from repro.stream.spec import StreamSpec

ANALYSIS = AnalysisSpec(network="gnmt", scale=0.02)
SWEEP = SweepSpec(networks=("gnmt",), scales=(0.02,), seeds=(0, 1))
STREAM = StreamSpec(analysis=ANALYSIS)

#: Periodic live-feed chunk whose per-SL means never move.
CYCLE = [
    {"seq_len": 10, "time_s": 0.1},
    {"seq_len": 20, "time_s": 0.2},
    {"seq_len": 30, "time_s": 0.3},
    {"seq_len": 40, "time_s": 0.4},
]

TERMINAL = ("done", "failed", "cancelled")


def wait_for(app: ServeApp, job_id: str, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        _, envelope, _ = app.handle("GET", f"/jobs/{job_id}")
        if envelope["job"]["state"] in TERMINAL:
            return envelope["job"]
        if time.monotonic() > deadline:
            raise AssertionError(f"job {job_id} never finished: {envelope}")
        time.sleep(0.02)


@pytest.fixture()
def app():
    application = ServeApp(
        AnalysisEngine(cache=TraceCache()), workers=1, sweep_mode="serial"
    )
    application.start()
    yield application
    application.close()


class GateSelector:
    """A selector that parks in ``select`` until the test releases it."""

    def __init__(self, started: threading.Event, release: threading.Event):
        self.started = started
        self.release = release

    def select(self, trace):
        self.started.set()
        if not self.release.wait(timeout=30):
            raise RuntimeError("gate never released")
        return SeqPointSelector().select(trace)


@pytest.fixture()
def gate():
    """Register a blocking ``_serve_gate`` selector; yields its events."""
    started, release = threading.Event(), threading.Event()
    SELECTORS.register("_serve_gate")(
        lambda: GateSelector(started, release)
    )
    try:
        yield started, release
    finally:
        release.set()
        SELECTORS._entries.pop("_serve_gate")


class TestBitIdentity:
    """HTTP job results equal a direct engine run, field for field."""

    def test_analyze(self, app):
        _, envelope, _ = app.handle(
            "POST", "/jobs", {"kind": "analyze", "spec": ANALYSIS.to_dict()}
        )
        job = wait_for(app, envelope["job"]["id"])
        assert job["state"] == "done"
        _, envelope, _ = app.handle("GET", f"/jobs/{job['id']}/result")
        direct = AnalysisEngine(cache=TraceCache()).run(ANALYSIS).to_dict()
        assert envelope["result"] == direct

    def test_sweep(self, app):
        _, envelope, _ = app.handle(
            "POST",
            "/jobs",
            {"kind": "sweep", "spec": SWEEP.to_dict(), "mode": "serial"},
        )
        job = wait_for(app, envelope["job"]["id"])
        assert job["state"] == "done"
        _, envelope, _ = app.handle("GET", f"/jobs/{job['id']}/result")
        direct = run_sweep(
            SWEEP, mode="serial", engine=AnalysisEngine(cache=TraceCache())
        ).to_dict()
        assert envelope["result"] == direct

    def test_stream(self, app):
        _, envelope, _ = app.handle(
            "POST", "/jobs", {"kind": "stream", "spec": STREAM.to_dict()}
        )
        job = wait_for(app, envelope["job"]["id"])
        assert job["state"] == "done"
        _, envelope, _ = app.handle("GET", f"/jobs/{job['id']}/result")
        direct = (
            AnalysisEngine(cache=TraceCache()).run_streaming(STREAM).to_dict()
        )
        assert envelope["result"] == direct

    def test_sweep_process_mode_matches_serial(self, app):
        # The service's spawn-pool path (PR 3 workers, shared disk
        # cache) produces per-point results bit-identical to serial.
        _, envelope, _ = app.handle(
            "POST",
            "/jobs",
            {
                "kind": "sweep",
                "spec": SWEEP.to_dict(),
                "mode": "process",
                "workers": 1,
            },
        )
        job = wait_for(app, envelope["job"]["id"], timeout=120)
        assert job["state"] == "done"
        _, envelope, _ = app.handle("GET", f"/jobs/{job['id']}/result")
        run = envelope["result"]
        assert run["mode"] == "process"
        direct = run_sweep(
            SWEEP, mode="serial", engine=AnalysisEngine(cache=TraceCache())
        ).to_dict()
        assert run["results"] == direct["results"]


class TestCancellation:
    def test_cancel_queued_job(self, app, gate):
        started, release = gate
        blocker = AnalysisSpec(
            network="gnmt", scale=0.02, selector="_serve_gate"
        )
        _, first, _ = app.handle(
            "POST", "/jobs", {"kind": "analyze", "spec": blocker.to_dict()}
        )
        assert started.wait(timeout=10)  # the only worker is now parked
        _, second, _ = app.handle(
            "POST", "/jobs", {"kind": "analyze", "spec": ANALYSIS.to_dict()}
        )
        assert second["job"]["state"] == "queued"

        status, envelope, _ = app.handle(
            "POST", f"/jobs/{second['job']['id']}/cancel"
        )
        assert status == 200
        assert envelope["job"]["state"] == "cancelled"  # immediate

        release.set()
        assert wait_for(app, first["job"]["id"])["state"] == "done"
        # The cancelled job never ran.
        _, envelope, _ = app.handle("GET", f"/jobs/{second['job']['id']}")
        assert envelope["job"]["started_s"] is None

    def test_cancel_running_job(self, app, gate):
        started, release = gate
        blocker = AnalysisSpec(
            network="gnmt", scale=0.02, selector="_serve_gate"
        )
        _, envelope, _ = app.handle(
            "POST", "/jobs", {"kind": "analyze", "spec": blocker.to_dict()}
        )
        job_id = envelope["job"]["id"]
        assert started.wait(timeout=10)

        _, envelope, _ = app.handle("POST", f"/jobs/{job_id}/cancel")
        assert envelope["job"]["state"] == "running"  # cooperative
        release.set()
        assert wait_for(app, job_id)["state"] == "cancelled"

        # The worker survived; the next job completes normally.
        _, envelope, _ = app.handle(
            "POST", "/jobs", {"kind": "analyze", "spec": ANALYSIS.to_dict()}
        )
        assert wait_for(app, envelope["job"]["id"])["state"] == "done"

    def test_cancel_running_sweep_without_leaking_workers(self, app, gate):
        started, release = gate
        sweep = SweepSpec(
            networks=("gnmt",),
            scales=(0.02,),
            seeds=(0, 1, 2),
            selectors=("_serve_gate",),
        )
        _, envelope, _ = app.handle(
            "POST",
            "/jobs",
            {"kind": "sweep", "spec": sweep.to_dict(), "mode": "serial"},
        )
        job_id = envelope["job"]["id"]
        assert started.wait(timeout=10)  # first grid point in flight

        app.handle("POST", f"/jobs/{job_id}/cancel")
        release.set()
        assert wait_for(app, job_id)["state"] == "cancelled"

        # No result is retrievable for a cancelled job.
        status, envelope, _ = app.handle("GET", f"/jobs/{job_id}/result")
        assert status == 400
        assert envelope["error"]["type"] == "ProtocolError"

        # The worker thread is alive and well.
        _, envelope, _ = app.handle(
            "POST", "/jobs", {"kind": "analyze", "spec": ANALYSIS.to_dict()}
        )
        assert wait_for(app, envelope["job"]["id"])["state"] == "done"


class TestFailedJobs:
    def test_failure_surfaces_one_structured_line(self, app):
        SELECTORS.register("_serve_boom")(
            lambda: type(
                "Boom",
                (),
                {
                    "select": lambda self, trace: (_ for _ in ()).throw(
                        ConfigurationError("exploded\nacross two lines")
                    )
                },
            )()
        )
        try:
            spec = AnalysisSpec(
                network="gnmt", scale=0.02, selector="_serve_boom"
            )
            _, envelope, _ = app.handle(
                "POST", "/jobs", {"kind": "analyze", "spec": spec.to_dict()}
            )
            job = wait_for(app, envelope["job"]["id"])
        finally:
            SELECTORS._entries.pop("_serve_boom")
        assert job["state"] == "failed"
        assert job["error"]["type"] == "ConfigurationError"
        assert job["error"]["message"] == "exploded across two lines"

        # /result on a failed job returns the status, not a payload.
        status, envelope, _ = app.handle("GET", f"/jobs/{job['id']}/result")
        assert status == 200
        assert "result" not in envelope
        assert envelope["job"]["error"]["type"] == "ConfigurationError"


class TestErrorContract:
    def test_unknown_endpoint_404(self, app):
        status, envelope, _ = app.handle("GET", "/nope")
        assert status == 404
        assert envelope["error"]["type"] == "NotFoundError"

    def test_unknown_job_404(self, app):
        status, envelope, _ = app.handle("GET", "/jobs/job-99")
        assert status == 404

    def test_malformed_submission_400(self, app):
        status, envelope, _ = app.handle(
            "POST", "/jobs", {"kind": "bogus", "spec": {}}
        )
        assert status == 400
        assert envelope["error"]["type"] == "ProtocolError"

    def test_result_before_done_400(self, app, gate):
        started, release = gate
        blocker = AnalysisSpec(
            network="gnmt", scale=0.02, selector="_serve_gate"
        )
        _, envelope, _ = app.handle(
            "POST", "/jobs", {"kind": "analyze", "spec": blocker.to_dict()}
        )
        job_id = envelope["job"]["id"]
        assert started.wait(timeout=10)
        status, envelope, _ = app.handle("GET", f"/jobs/{job_id}/result")
        assert status == 400
        assert "running" in envelope["error"]["message"]
        release.set()
        wait_for(app, job_id)

    def test_wrong_method_404(self, app):
        status, _, _ = app.handle("DELETE", "/jobs/job-1")
        assert status == 404


class TestStatsAndEviction:
    def test_forced_eviction_is_visible_in_stats(self):
        app = ServeApp(
            AnalysisEngine(cache=TraceCache(max_entries=1)),
            workers=1,
            sweep_mode="serial",
        )
        app.start()
        try:
            for seed in (0, 1, 2):
                spec = AnalysisSpec(network="gnmt", scale=0.02, seed=seed)
                _, envelope, _ = app.handle(
                    "POST", "/jobs", {"kind": "analyze", "spec": spec.to_dict()}
                )
                assert wait_for(app, envelope["job"]["id"])["state"] == "done"
            _, envelope, _ = app.handle("GET", "/stats")
            cache = envelope["cache"]
            assert cache["misses"] == 3  # three distinct seeds simulated
            assert cache["entries"] == 1  # budget enforced
            assert cache["evictions"] == 2  # the two older seeds displaced
            assert cache["bytes"] > 0
            assert cache["max_entries"] == 1
        finally:
            app.close()

    def test_stats_shape(self, app):
        _, envelope, _ = app.handle(
            "POST", "/jobs", {"kind": "analyze", "spec": ANALYSIS.to_dict()}
        )
        wait_for(app, envelope["job"]["id"])
        _, envelope, _ = app.handle("GET", "/stats")
        assert envelope["ok"] is True
        assert envelope["protocol"] == 1
        assert envelope["uptime_s"] >= 0
        assert {"hits", "misses", "entries", "evictions", "bytes"} <= set(
            envelope["cache"]
        )
        queue = envelope["queue"]
        assert queue["jobs"] == 1
        assert queue["states"]["done"] == 1
        assert envelope["sessions"]["open"] == 0


class TestStorageStats:
    """/stats storage section: per-format cold loads and the plan store."""

    def test_one_cold_load_of_each_format(self, tmp_path):
        from repro.models.plan import PLAN_CACHE

        # Seed the shared cache directory with one artefact per format:
        # a binary .npt written by a sibling engine, and spec_b's trace
        # planted by hand as a legacy v2 JSON artefact under its key.
        spec_a = AnalysisSpec(network="gnmt", scale=0.02, seed=0)
        spec_b = AnalysisSpec(network="gnmt", scale=0.02, seed=1)
        seeder = AnalysisEngine(cache=TraceCache(tmp_path))
        seeder.trace_for(spec_a)  # writes {key_a}.npt
        scratch = AnalysisEngine(cache=TraceCache())
        scratch.trace_for(spec_b).save(
            tmp_path / f"{scratch.trace_key(spec_b)}.json", version=2
        )

        PLAN_CACHE.clear()  # force lowerings through the attached store
        app = ServeApp(
            AnalysisEngine(cache=TraceCache(tmp_path)),
            workers=1,
            sweep_mode="serial",
            plan_store_dir=str(tmp_path / "plans"),
        )
        app.start()
        try:
            for spec in (spec_a, spec_b):
                _, envelope, _ = app.handle(
                    "POST", "/jobs", {"kind": "analyze", "spec": spec.to_dict()}
                )
                assert wait_for(app, envelope["job"]["id"])["state"] == "done"
            _, envelope, _ = app.handle("GET", "/stats")
            storage = envelope["storage"]
            assert storage["directory"] == str(tmp_path)
            assert storage["disk_entries"] == {"json": 1, "binary": 1}
            for fmt in ("binary", "json"):
                entry = storage["cold_loads"][fmt]
                assert entry["count"] == 1
                assert entry["max_ms"] >= entry["mean_ms"] >= 0.0
            plan_store = storage["plan_store"]
            assert plan_store["entries"] > 0
            assert plan_store["misses"] > 0
        finally:
            app.close()

    def test_memory_only_storage_section(self, app):
        _, envelope, _ = app.handle("GET", "/stats")
        storage = envelope["storage"]
        assert storage["directory"] is None
        assert storage["cold_loads"] == {}
        assert storage["plan_store"] is None


class TestConcurrentSessions:
    def test_two_live_sessions_converge_independently(self, app):
        # Same scenario, different convergence knobs: the eager session
        # needs fewer agreeing checks than the cautious one.
        ids = []
        for patience in (3, 5):
            spec = StreamSpec(analysis=ANALYSIS, cadence=20, patience=patience)
            _, envelope, _ = app.handle(
                "POST", "/stream", {"spec": spec.to_dict()}
            )
            ids.append(envelope["session"]["id"])

        # Interleave chunks between the two until both converge.
        eager, cautious = ids
        snapshots = {}
        for _ in range(40):
            for session_id in ids:
                if snapshots.get(session_id, {}).get("converged"):
                    continue
                _, envelope, _ = app.handle(
                    "POST", f"/stream/{session_id}/feed", {"records": CYCLE * 5}
                )
                snapshots[session_id] = envelope["session"]
            if all(snapshots[s]["converged"] for s in ids):
                break
        assert snapshots[eager]["converged"]
        assert snapshots[cautious]["converged"]
        # Convergence is per-session: the cautious one needed more data.
        assert (
            snapshots[cautious]["iterations_consumed"]
            > snapshots[eager]["iterations_consumed"]
        )

        for session_id in ids:
            _, envelope, _ = app.handle(
                "POST", f"/stream/{session_id}/finish"
            )
            assert envelope["result"]["converged"] is True
        _, envelope, _ = app.handle("GET", "/stats")
        assert envelope["sessions"]["converged"] == 2

    def test_replay_sessions_share_the_cache(self, app):
        spec = StreamSpec(analysis=ANALYSIS, cadence=8, patience=3)
        for _ in range(2):
            _, envelope, _ = app.handle(
                "POST", "/stream", {"spec": spec.to_dict(), "replay": True}
            )
            assert envelope["session"]["replay"] is True
        _, envelope, _ = app.handle("GET", "/stats")
        assert envelope["cache"]["misses"] == 1
        assert envelope["cache"]["hits"] >= 1
        assert envelope["sessions"]["open"] == 2


class TestHttpTransport:
    """Contract tests against a real socket-listening server."""

    @pytest.fixture()
    def server(self):
        with ReproServer(
            port=0, workers=1, sweep_mode="serial"
        ) as running:
            yield running

    @staticmethod
    def call(url, method="GET", payload=None, raw=None):
        data = raw if raw is not None else (
            None if payload is None else json.dumps(payload).encode()
        )
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_job_round_trip_over_http(self, server):
        status, envelope = self.call(
            f"{server.url}/jobs",
            "POST",
            {"kind": "analyze", "spec": ANALYSIS.to_dict()},
        )
        assert status == 200
        job_id = envelope["job"]["id"]
        deadline = time.monotonic() + 30
        while True:
            status, envelope = self.call(f"{server.url}/jobs/{job_id}")
            if envelope["job"]["state"] in TERMINAL:
                break
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert envelope["job"]["state"] == "done"
        status, envelope = self.call(f"{server.url}/jobs/{job_id}/result")
        direct = AnalysisEngine(cache=TraceCache()).run(ANALYSIS).to_dict()
        assert envelope["result"] == direct

    def test_http_error_envelopes(self, server):
        status, envelope = self.call(f"{server.url}/jobs/job-42")
        assert status == 404
        assert envelope == {
            "v": 1,
            "ok": False,
            "error": {
                "type": "NotFoundError", "message": "no such job: job-42",
            },
        }
        status, envelope = self.call(
            f"{server.url}/jobs", "POST", raw=b"{not json"
        )
        assert status == 400
        assert envelope["error"]["type"] == "ProtocolError"
        assert "JSON" in envelope["error"]["message"]

    def test_survives_client_disconnect_mid_request(self, server):
        # Open a session, then abandon a feed upload halfway through.
        status, envelope = self.call(
            f"{server.url}/stream",
            "POST",
            {"spec": STREAM.to_dict()},
        )
        session_id = envelope["session"]["id"]

        for partial in (
            # Body shorter than Content-Length, then hang up.
            b"POST /stream/%s/feed HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\nContent-Length: 500\r\n"
            b"\r\n{\"records\": [" % session_id.encode(),
            # Hang up mid request-line.
            b"GET /sta",
        ):
            with socket.create_connection(
                (server.host, server.port), timeout=5
            ) as sock:
                sock.sendall(partial)
            # Abrupt close; give the handler thread a beat to unwind.
            time.sleep(0.1)

        # The server still answers, and the session is intact.
        status, envelope = self.call(f"{server.url}/stats")
        assert status == 200
        assert envelope["sessions"]["open"] == 1
        status, envelope = self.call(
            f"{server.url}/stream/{session_id}/feed",
            "POST",
            {"records": CYCLE},
        )
        assert status == 200
        assert envelope["session"]["iterations_consumed"] == len(CYCLE)

    def test_latency_metrics_accumulate(self, server):
        for _ in range(3):
            self.call(f"{server.url}/healthz")
        status, envelope = self.call(f"{server.url}/stats")
        latency = envelope["latency"]
        assert latency["GET /healthz"]["count"] == 3
        assert latency["GET /healthz"]["p50_ms"] >= 0
