"""Unit tests for the synthetic IWSLT and LibriSpeech corpora."""

import numpy as np

from repro.data.iwslt import IWSLT_MAX_LEN, build_iwslt
from repro.data.librispeech import FRAMES_PER_SECOND, build_librispeech


class TestIwslt:
    def test_population_size(self):
        assert len(build_iwslt(sentences=5000)) == 5000

    def test_vocab_is_papers(self):
        assert build_iwslt(sentences=100).vocab == 36549

    def test_lengths_bounded(self):
        corpus = build_iwslt(sentences=20_000)
        assert corpus.lengths.min() >= 1
        assert corpus.lengths.max() <= IWSLT_MAX_LEN

    def test_sentence_length_statistics(self):
        corpus = build_iwslt(sentences=50_000)
        median = float(np.median(corpus.lengths))
        assert 13 <= median <= 19  # IWSLT-like

    def test_targets_track_sources(self):
        corpus = build_iwslt(sentences=20_000)
        ratios = [
            s.tgt_length / s.length for s in corpus.samples if s.length >= 5
        ]
        assert 1.0 <= float(np.mean(ratios)) <= 1.2

    def test_deterministic(self):
        a = build_iwslt(sentences=500, seed=1)
        b = build_iwslt(sentences=500, seed=1)
        assert a.lengths.tolist() == b.lengths.tolist()

    def test_seed_matters(self):
        a = build_iwslt(sentences=500, seed=1)
        b = build_iwslt(sentences=500, seed=2)
        assert a.lengths.tolist() != b.lengths.tolist()


class TestLibrispeech:
    def test_population_size(self):
        assert len(build_librispeech(utterances=5000)) == 5000

    def test_vocab_is_alphabet(self):
        assert build_librispeech(utterances=100).vocab == 29

    def test_frames_bounded(self):
        corpus = build_librispeech(utterances=20_000)
        assert corpus.lengths.min() >= FRAMES_PER_SECOND  # >= 1 second
        assert corpus.lengths.max() <= 835

    def test_total_duration_near_100_hours(self):
        corpus = build_librispeech()
        hours = corpus.lengths.sum() / FRAMES_PER_SECOND / 3600
        assert 60 <= hours <= 110

    def test_no_targets(self):
        assert not build_librispeech(utterances=100).has_targets

    def test_bimodal_durations(self):
        corpus = build_librispeech(utterances=30_000)
        short = (corpus.lengths < 350).mean()
        assert 0.2 <= short <= 0.5
