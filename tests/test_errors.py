"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    KernelSelectionError,
    LoweringError,
    ProjectionError,
    ReproError,
    SelectionError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            ConfigurationError,
            KernelSelectionError,
            LoweringError,
            ProjectionError,
            SelectionError,
            TraceError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)
        with pytest.raises(ReproError):
            raise error_type("boom")

    def test_catchable_as_single_family(self):
        # Library callers can catch everything with one clause.
        caught = []
        for error_type in (ConfigurationError, TraceError):
            try:
                raise error_type("x")
            except ReproError as err:
                caught.append(type(err))
        assert caught == [ConfigurationError, TraceError]
