"""Arrival processes: determinism, pacing, burst structure."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    DeterministicArrivals,
    OfflineArrivals,
    PoissonArrivals,
    build_arrival_process,
)


class TestDeterminism:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_same_seed_bit_identical(self, kind):
        process = build_arrival_process(kind, rate=32.0)
        first = process.times(500, seed=7)
        second = process.times(500, seed=7)
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("kind", ("poisson", "bursty"))
    def test_different_seeds_differ(self, kind):
        process = build_arrival_process(kind, rate=32.0)
        assert not np.array_equal(
            process.times(500, seed=0), process.times(500, seed=1)
        )

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_sorted_and_non_negative(self, kind):
        times = build_arrival_process(kind, rate=32.0).times(500, seed=3)
        assert times.shape == (500,)
        assert times.dtype == np.float64
        assert np.all(np.diff(times) >= 0)
        assert np.all(times >= 0)


class TestShapes:
    def test_offline_all_at_zero(self):
        assert np.array_equal(
            OfflineArrivals().times(16, seed=9), np.zeros(16)
        )

    def test_deterministic_exact_pacing(self):
        times = DeterministicArrivals(rate=10.0).times(5, seed=0)
        assert np.allclose(times, [0.0, 0.1, 0.2, 0.3, 0.4])

    def test_poisson_mean_rate(self):
        times = PoissonArrivals(rate=50.0).times(20_000, seed=0)
        observed = times.size / times[-1]
        assert observed == pytest.approx(50.0, rel=0.05)

    def test_bursty_long_run_mean_rate(self):
        process = BurstyArrivals(
            rate=50.0, burst_factor=3.0, on_fraction=0.25, period_s=1.0
        )
        times = process.times(20_000, seed=0)
        observed = times.size / times[-1]
        assert observed == pytest.approx(50.0, rel=0.05)

    def test_bursty_on_phase_is_denser(self):
        process = BurstyArrivals(
            rate=50.0, burst_factor=3.0, on_fraction=0.25, period_s=1.0
        )
        times = process.times(20_000, seed=0)
        in_burst = np.mod(times, 1.0) <= 0.25
        # burst_factor 3 at on_fraction 0.25 puts 75% of events in the
        # first quarter of each period.
        assert in_burst.mean() == pytest.approx(0.75, abs=0.03)


class TestValidation:
    @pytest.mark.parametrize("kind", ("deterministic", "poisson", "bursty"))
    def test_rate_must_be_positive(self, kind):
        with pytest.raises(ConfigurationError, match="rate must be positive"):
            build_arrival_process(kind, rate=0.0)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown arrival"):
            build_arrival_process("fractal")

    def test_burst_factor_floor(self):
        with pytest.raises(ConfigurationError, match="burst_factor"):
            BurstyArrivals(rate=1.0, burst_factor=0.5)

    def test_on_fraction_open_interval(self):
        with pytest.raises(ConfigurationError, match="on_fraction"):
            BurstyArrivals(rate=1.0, on_fraction=1.0)

    def test_off_phase_rate_stays_positive(self):
        with pytest.raises(ConfigurationError, match="off-phase"):
            BurstyArrivals(rate=1.0, burst_factor=4.0, on_fraction=0.25)

    def test_period_positive(self):
        with pytest.raises(ConfigurationError, match="period_s"):
            BurstyArrivals(rate=1.0, period_s=0.0)
