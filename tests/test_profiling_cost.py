"""Unit tests for repro.profiling.cost."""

import pytest

from repro.core.selection import SelectedPoint, Selection
from repro.errors import ProjectionError
from repro.profiling.cost import ProfilingCostModel
from tests.conftest import make_record, make_trace


def selection(times=(1.0, 2.0)) -> Selection:
    points = tuple(
        SelectedPoint(record=make_record(i, 10 * (i + 1), t), weight=5.0)
        for i, t in enumerate(times)
    )
    return Selection(method="seqpoint", points=points)


class TestProfilingCostModel:
    def test_epoch_cost(self):
        model = ProfilingCostModel(overhead_multiplier=10.0, setup_s=5.0)
        trace = make_trace([(10, 1.0), (20, 3.0)])
        assert model.epoch_profiling_s(trace) == pytest.approx(5.0 + 40.0)

    def test_selection_serial_cost(self):
        model = ProfilingCostModel(overhead_multiplier=10.0, setup_s=5.0)
        assert model.selection_profiling_s(selection()) == pytest.approx(35.0)

    def test_selection_parallel_cost_uses_slowest(self):
        model = ProfilingCostModel(overhead_multiplier=10.0, setup_s=5.0)
        assert model.selection_parallel_s(selection()) == pytest.approx(25.0)

    def test_speedups(self):
        model = ProfilingCostModel(overhead_multiplier=10.0, setup_s=0.0)
        trace = make_trace([(10, 1.0)] * 100)
        outcome = model.speedups(trace, selection(times=(1.0,)))
        assert outcome.serial_speedup == pytest.approx(100.0)
        assert outcome.parallel_speedup == pytest.approx(100.0)

    def test_parallel_never_slower_than_serial(self):
        model = ProfilingCostModel()
        trace = make_trace([(10, 0.5)] * 50)
        outcome = model.speedups(trace, selection())
        assert outcome.parallel_speedup >= outcome.serial_speedup

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ProjectionError):
            ProfilingCostModel(overhead_multiplier=0.9)

    def test_negative_setup_rejected(self):
        with pytest.raises(ProjectionError):
            ProfilingCostModel(setup_s=-1.0)
