"""Unit tests for repro.train.runner."""

import pytest

from repro.data.batching import ShuffledBatching, SortedBatching
from repro.data.dataset import Sample, SequenceDataset
from repro.data.iwslt import build_iwslt
from repro.data.librispeech import build_librispeech
from repro.errors import ConfigurationError
from repro.models.ds2 import build_ds2
from repro.models.gnmt import build_gnmt
from repro.train.runner import TrainingRunSimulator


@pytest.fixture(scope="module")
def ds2_sim(devices):
    corpus = build_librispeech(utterances=640)
    return TrainingRunSimulator(
        build_ds2(), corpus, SortedBatching(64), devices[1]
    )


class TestRunEpoch:
    def test_iteration_count(self, ds2_sim):
        trace = ds2_sim.run_epoch(include_eval=False)
        assert len(trace) == 640 // 64

    def test_sorted_runtimes_monotonic(self, ds2_sim):
        trace = ds2_sim.run_epoch(include_eval=False)
        times = [r.time_s for r in trace.records]
        assert times == sorted(times)

    def test_autotune_charged_once(self, devices):
        sim = TrainingRunSimulator(
            build_ds2(),
            build_librispeech(utterances=640),
            SortedBatching(64),
            devices[1],
        )
        first = sim.run_epoch(epoch=0, include_eval=False)
        second = sim.run_epoch(epoch=1, include_eval=False)
        assert first.autotune_s > 0
        # All shapes were tuned in epoch 0.
        assert second.autotune_s == 0.0

    def test_metadata_recorded(self, ds2_sim):
        trace = ds2_sim.run_epoch(include_eval=False)
        assert trace.model_name == "ds2"
        assert trace.config_name == "config#1"
        assert trace.batch_size == 64

    def test_dataset_too_small_raises(self, devices):
        corpus = build_librispeech(utterances=256)
        sim = TrainingRunSimulator(
            build_ds2(), corpus, SortedBatching(512), devices[1]
        )
        with pytest.raises(ConfigurationError, match="too small"):
            sim.run_epoch()


class TestEvalPhase:
    def test_eval_time_small_fraction(self, devices):
        corpus = build_librispeech(utterances=1280)
        train, evaluation = corpus.split(0.03, seed=1)
        sim = TrainingRunSimulator(
            build_ds2(), train, SortedBatching(64), devices[1],
            eval_dataset=evaluation,
        )
        trace = sim.run_epoch()
        # Paper §IV-C1: evaluation is a few percent of epoch time.
        assert 0 < trace.eval_s < 0.10 * trace.total_time_s

    def test_eval_skipped_when_absent(self, ds2_sim):
        assert ds2_sim.run_epoch(include_eval=True).eval_s == 0.0

    def test_eval_follows_epoch_order(self, devices):
        # The eval plan is batched by the policy at the *simulated*
        # epoch: a shuffled policy regroups the held-out set each
        # epoch, changing batch padding and therefore eval time.
        # Distinct lengths make the regrouping visible deterministically.
        train = build_librispeech(utterances=640)
        evaluation = SequenceDataset(
            "distinct-eval",
            tuple(Sample(length=100 + 7 * i) for i in range(48)),
            vocab=29,
        )
        sim = TrainingRunSimulator(
            build_ds2(), train, ShuffledBatching(16), devices[1],
            eval_dataset=evaluation,
        )
        epoch0, epoch1 = sim.run_training(epochs=2)
        assert epoch0.eval_s > 0
        assert epoch0.eval_s != epoch1.eval_s

    def test_eval_epoch_invariant_under_sorted_order(self, devices):
        # Sorted batching is epoch-invariant, so eval time must be too.
        corpus = build_librispeech(utterances=1280)
        train, evaluation = corpus.split(0.10, seed=1)
        sim = TrainingRunSimulator(
            build_ds2(), train, SortedBatching(64), devices[1],
            eval_dataset=evaluation,
        )
        epoch0, epoch1 = sim.run_training(epochs=2)
        assert epoch0.eval_s > 0
        assert epoch0.eval_s == epoch1.eval_s


class TestNoise:
    def test_noise_perturbs_times(self, devices):
        corpus = build_iwslt(sentences=640)
        clean = TrainingRunSimulator(
            build_gnmt(), corpus, ShuffledBatching(64), devices[1]
        ).run_epoch(include_eval=False)
        noisy = TrainingRunSimulator(
            build_gnmt(), corpus, ShuffledBatching(64), devices[1],
            noise_sigma=0.05,
        ).run_epoch(include_eval=False)
        assert clean.total_time_s != noisy.total_time_s
        # but only slightly (5% sigma across 10 iterations).
        assert noisy.total_time_s == pytest.approx(clean.total_time_s, rel=0.2)

    def test_noise_deterministic_per_seed(self, devices):
        corpus = build_iwslt(sentences=640)

        def run(noise_seed):
            return TrainingRunSimulator(
                build_gnmt(), corpus, ShuffledBatching(64), devices[1],
                noise_sigma=0.05, noise_seed=noise_seed,
            ).run_epoch(include_eval=False).total_time_s

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_negative_sigma_rejected(self, devices):
        corpus = build_iwslt(sentences=640)
        with pytest.raises(ConfigurationError):
            TrainingRunSimulator(
                build_gnmt(), corpus, ShuffledBatching(64), devices[1],
                noise_sigma=-0.1,
            )


class TestMeasureSeqLen:
    def test_matches_executor(self, ds2_sim):
        time_direct = ds2_sim.measure_seq_len(300)
        trace = ds2_sim.run_epoch(include_eval=False)
        # measure_seq_len is noise-free and keyed only by SL.
        assert time_direct > 0
        assert ds2_sim.measure_seq_len(300) == time_direct
