"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestConfigs:
    def test_lists_five_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert out.count("config#") == 5
        assert "L1 off" in out
        assert "L2 off" in out


class TestIdentify:
    def test_prints_seqpoints(self, capsys):
        assert main(["identify", "--network", "ds2", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "SeqPoints:" in out
        assert "SL" in out

    def test_requires_network(self, capsys):
        with pytest.raises(SystemExit):
            main(["identify"])

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            main(["identify", "--network", "bert"])


class TestExperiments:
    def test_selected_ids(self, capsys):
        assert main(["experiments", "--scale", "0.01", "--ids", "table2"]) == 0
        out = capsys.readouterr().out
        assert "[table2]" in out

    def test_unknown_id_fails(self, capsys):
        assert main(["experiments", "--ids", "fig99"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "tables.txt"
        assert main(
            ["experiments", "--scale", "0.01", "--ids", "table2",
             "--output", str(target)]
        ) == 0
        assert "[table2]" in target.read_text()


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
