"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        from repro import __version__

        assert f"repro {__version__}" in capsys.readouterr().out


class TestConfigs:
    def test_lists_five_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert out.count("config#") == 5
        assert "L1 off" in out
        assert "L2 off" in out


class TestIdentify:
    def test_prints_seqpoints(self, capsys):
        assert main(["identify", "--network", "ds2", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "SeqPoints:" in out
        assert "SL" in out

    def test_requires_network(self, capsys):
        with pytest.raises(SystemExit):
            main(["identify"])

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            main(["identify", "--network", "bert"])

    def test_json_format(self, capsys):
        assert main(
            ["identify", "--network", "ds2", "--scale", "0.01",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["network"] == "ds2"
        assert payload["k"] >= 0
        assert payload["seqpoints"]
        for point in payload["seqpoints"]:
            assert {"seq_len", "weight", "time_s"} <= set(point)


class TestAnalyze:
    def test_json_output(self, capsys):
        assert main(
            ["analyze", "--network", "gnmt", "--scale", "0.01",
             "--targets", "1,3", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "seqpoint"
        assert payload["spec"]["dataset"] == "iwslt"
        assert [p["config"] for p in payload["projections"]] == [1, 3]
        for projection in payload["projections"]:
            assert {"projected_time_s", "actual_time_s", "error_pct",
                    "projected_uplift_pct"} <= set(projection)

    def test_table_output(self, capsys):
        assert main(
            ["analyze", "--network", "gnmt", "--scale", "0.01"]
        ) == 0
        out = capsys.readouterr().out
        assert "selected points" in out
        assert "projections" in out
        assert "config#1" in out

    def test_spec_file_matches_inline(self, tmp_path, capsys):
        assert main(
            ["analyze", "--network", "gnmt", "--scale", "0.01",
             "--targets", "1,3", "--format", "json"]
        ) == 0
        inline = json.loads(capsys.readouterr().out)

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(inline["spec"]), encoding="utf-8")
        assert main(
            ["analyze", "--spec", str(spec_file), "--targets", "1,3",
             "--format", "json"]
        ) == 0
        from_file = json.loads(capsys.readouterr().out)
        assert from_file == inline

    def test_selector_args(self, capsys):
        assert main(
            ["analyze", "--network", "gnmt", "--scale", "0.01",
             "--selector", "kmeans", "--selector-arg", "k=3",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "kmeans"
        assert payload["spec"]["selector_kwargs"] == {"k": 3}
        assert len(payload["points"]) <= 3

    def test_inline_flags_override_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            '{"network": "gnmt", "scale": 0.01, "batch_size": 64}',
            encoding="utf-8",
        )
        assert main(
            ["analyze", "--spec", str(spec_file), "--batch-size", "32",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["batch_size"] == 32  # inline wins
        assert payload["spec"]["scale"] == 0.01  # file fields survive

    def test_missing_network(self, capsys):
        assert main(["analyze"]) == 2
        assert "--network" in capsys.readouterr().err

    def test_bad_selector_arg(self, capsys):
        assert main(
            ["analyze", "--network", "gnmt", "--selector-arg", "oops"]
        ) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_bad_spec_payload(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text('{"network": "gnmt", "nope": 1}', encoding="utf-8")
        assert main(["analyze", "--spec", str(spec_file)]) == 2
        assert "unknown AnalysisSpec" in capsys.readouterr().err

    def test_missing_spec_file(self, capsys):
        assert main(["analyze", "--spec", "/does/not/exist.json"]) == 2
        assert "analyze:" in capsys.readouterr().err

    def test_matches_library_api(self, capsys):
        """CLI and programmatic engine produce identical numbers."""
        from repro.api import AnalysisEngine, AnalysisSpec, ProjectionSpec

        payload = json.dumps({"network": "gnmt", "scale": 0.01})
        spec = AnalysisSpec.from_dict(json.loads(payload))
        expected = AnalysisEngine().run(spec, ProjectionSpec(targets=(1, 3)))

        assert main(
            ["analyze", "--network", "gnmt", "--scale", "0.01",
             "--targets", "1,3", "--format", "json"]
        ) == 0
        assert json.loads(capsys.readouterr().out) == json.loads(
            json.dumps(expected.to_dict())
        )

    def test_cache_dir(self, tmp_path, capsys):
        args = ["analyze", "--network", "gnmt", "--scale", "0.01",
                "--cache-dir", str(tmp_path), "--format", "json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        cached = list(tmp_path.glob("*.npt"))
        assert len(cached) == 1
        assert main(args) == 0  # second run reuses the on-disk trace
        assert json.loads(capsys.readouterr().out) == first


class TestSweep:
    def test_json_output_matches_library(self, capsys):
        from repro.api import SweepSpec, run_sweep

        assert main(
            ["sweep", "--networks", "gnmt", "--scales", "0.01",
             "--seeds", "0,1", "--mode", "serial", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "serial"
        assert payload["unique_traces"] == 2
        assert len(payload["results"]) == 2

        expected = run_sweep(
            SweepSpec(networks=("gnmt",), scales=(0.01,), seeds=(0, 1)),
            mode="serial",
        )
        assert payload["results"] == json.loads(
            json.dumps([r.to_dict() for r in expected.results])
        )

    def test_table_output(self, capsys):
        assert main(
            ["sweep", "--networks", "gnmt", "--scales", "0.01",
             "--selectors", "seqpoint,frequent", "--mode", "serial"]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep results" in out
        assert "frequent" in out
        assert "2 analysis points, 1 unique traces" in out

    def test_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(
            json.dumps({"networks": ["gnmt"], "scales": [0.01], "seeds": [0, 1]}),
            encoding="utf-8",
        )
        assert main(
            ["sweep", "--spec", str(spec_file), "--mode", "serial",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["seeds"] == [0, 1]

    def test_inline_flags_override_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(
            json.dumps({"networks": ["gnmt"], "scales": [0.5],
                        "seeds": [0, 1]}),
            encoding="utf-8",
        )
        assert main(
            ["sweep", "--spec", str(spec_file), "--scales", "0.01",
             "--mode", "serial", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["scales"] == [0.01]  # inline wins
        assert payload["sweep"]["seeds"] == [0, 1]  # file fields survive

    def test_missing_networks(self, capsys):
        assert main(["sweep"]) == 2
        assert "--networks" in capsys.readouterr().err

    def test_unknown_network_clean_error(self, capsys):
        assert main(["sweep", "--networks", "bert", "--mode", "serial"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one line, no traceback
        assert "unknown model 'bert'" in err


class TestStream:
    def test_json_output_matches_library(self, capsys):
        from repro.api import default_engine
        from repro.stream import StreamSpec

        args = ["stream", "--network", "gnmt", "--scale", "0.01",
                "--cadence", "8", "--patience", "2", "--rtol", "0.05",
                "--sl-rtol", "0.3", "--format", "json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["cadence"] == 8
        assert payload["epoch_iterations"] > 0
        assert payload["iterations_consumed"] <= payload["epoch_iterations"]
        assert payload["checks"]

        expected = default_engine().run_streaming(
            StreamSpec.from_dict(payload["spec"])
        )
        assert payload == json.loads(json.dumps(expected.to_dict()))

    def test_table_output(self, capsys):
        assert main(["stream", "--network", "gnmt", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "consumed" in out
        assert "selected points" in out
        assert "projected epoch" in out

    def test_spec_file_matches_inline(self, tmp_path, capsys):
        spec_file = tmp_path / "stream.json"
        spec_file.write_text(
            json.dumps({
                "analysis": {"network": "gnmt", "scale": 0.01},
                "cadence": 8, "patience": 2,
            }),
            encoding="utf-8",
        )
        assert main(["stream", "--spec", str(spec_file),
                     "--format", "json"]) == 0
        from_file = json.loads(capsys.readouterr().out)
        assert main(["stream", "--network", "gnmt", "--scale", "0.01",
                     "--cadence", "8", "--patience", "2",
                     "--format", "json"]) == 0
        inline = json.loads(capsys.readouterr().out)
        assert from_file == inline

    def test_inline_flags_override_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "stream.json"
        spec_file.write_text(
            json.dumps({"analysis": {"network": "gnmt", "scale": 0.01},
                        "cadence": 64, "patience": 2}),
            encoding="utf-8",
        )
        assert main(["stream", "--spec", str(spec_file), "--cadence", "8",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["cadence"] == 8  # inline wins
        assert payload["spec"]["patience"] == 2  # file knobs survive
        assert payload["spec"]["analysis"]["scale"] == 0.01

    def test_missing_network(self, capsys):
        assert main(["stream"]) == 2
        assert "--network" in capsys.readouterr().err

    def test_cache_dir_reuses_traces(self, tmp_path, capsys):
        args = ["stream", "--network", "gnmt", "--scale", "0.01",
                "--cache-dir", str(tmp_path), "--format", "json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert list(tmp_path.glob("*.npt"))
        assert main(args) == 0
        assert json.loads(capsys.readouterr().out) == first


class TestTraffic:
    _FAST = ["--network", "gnmt", "--scale", "0.02", "--requests", "64",
             "--rate", "64", "--cadence", "4", "--patience", "2",
             "--rtol", "0.05"]

    def test_json_output_matches_library(self, capsys):
        from repro.api import default_engine
        from repro.traffic import TrafficSpec

        assert main(["traffic", *self._FAST, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["arrival"] == "poisson"
        assert payload["requests"] == 64
        assert payload["latency"]["count"] == 64

        expected = default_engine().run_traffic(
            TrafficSpec.from_dict(payload["spec"])
        )
        assert payload == json.loads(json.dumps(expected.to_dict()))

    def test_table_output(self, capsys):
        assert main(["traffic", *self._FAST]) == 0
        out = capsys.readouterr().out
        assert "served" in out
        assert "request latency (SLO view)" in out
        assert "p95" in out
        assert "streaming" in out

    def test_inline_flags_override_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "traffic.json"
        spec_file.write_text(
            json.dumps({
                "analysis": {"network": "gnmt", "scale": 0.02},
                "requests": 512, "arrival": "deterministic",
                "cadence": 4, "patience": 2, "rtol": 0.05,
            }),
            encoding="utf-8",
        )
        assert main(["traffic", "--spec", str(spec_file),
                     "--requests", "64", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["requests"] == 64  # inline wins
        assert payload["spec"]["arrival"] == "deterministic"  # file survives
        assert payload["spec"]["analysis"]["scale"] == 0.02

    def test_offline_arrival_with_projections(self, capsys):
        assert main(
            ["traffic", *self._FAST, "--arrival", "offline",
             "--targets", "1,3", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["config"] for p in payload["projections"]] == [1, 3]

    def test_missing_network(self, capsys):
        assert main(["traffic"]) == 2
        assert "--network" in capsys.readouterr().err

    def test_bad_phases_json_exits_2(self, capsys):
        assert main(["traffic", *self._FAST, "--phases", "{nope"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "--phases" in err

    def test_bad_mix_exits_2(self, capsys):
        assert main(
            ["traffic", *self._FAST,
             "--phases", '[{"fraction": 0.0}]']
        ) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "fraction" in err

    def test_plan_store_dir_flag_populates_store(self, tmp_path, capsys):
        from repro.models.plan import PLAN_CACHE

        PLAN_CACHE.clear()  # force lowerings through the attached store
        plans = tmp_path / "plans"
        assert main(
            ["traffic", *self._FAST, "--format", "json",
             "--plan-store-dir", str(plans)]
        ) == 0
        assert json.loads(capsys.readouterr().out)["requests"] == 64
        assert list(plans.glob("*.npt"))


class TestCleanErrors:
    """Library failures exit 2 with one stderr line, never a traceback."""

    def test_analyze_unknown_selector_kwarg(self, capsys):
        assert main(["analyze", "--network", "gnmt", "--scale", "0.01",
                     "--selector-arg", "bogus=1"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "rejected kwargs" in err
        assert "Traceback" not in err

    def test_stream_unknown_selector_kwarg(self, capsys):
        assert main(["stream", "--network", "gnmt", "--scale", "0.01",
                     "--selector-arg", "bogus=1"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "rejected kwargs" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize(
        ("selector", "arg"),
        [
            ("seqpoint", "initial_bins=2.5"),
            ("seqpoint", "error_threshold_pct=\"tight\""),
            ("kmeans", "seed=1.5"),
            ("kmeans", "k=\"many\""),
            ("prior", "window=0.5"),
        ],
    )
    def test_wrongly_typed_selector_kwargs_fail_eagerly(
        self, capsys, selector, arg
    ):
        """Type confusion fails at spec construction, not mid-selection."""
        for command in ("analyze", "stream"):
            assert main([command, "--network", "gnmt", "--scale", "0.01",
                         "--selector", selector, "--selector-arg", arg]) == 2
            err = capsys.readouterr().err
            assert err.count("\n") == 1
            assert "rejected kwargs" in err

    def test_stream_bad_cadence(self, capsys):
        assert main(["stream", "--network", "gnmt", "--scale", "0.01",
                     "--cadence", "0"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "cadence" in err

    def test_stream_unknown_spec_fields(self, tmp_path, capsys):
        spec_file = tmp_path / "stream.json"
        spec_file.write_text(
            '{"analysis": {"network": "gnmt"}, "nope": 1}', encoding="utf-8"
        )
        assert main(["stream", "--spec", str(spec_file)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown StreamSpec" in err

    def test_identify_bad_scale(self, capsys):
        assert main(["identify", "--network", "gnmt", "--scale", "-1"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "scale must lie in (0, 1]" in err

    def test_analyze_unknown_network_in_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text('{"network": "bert"}', encoding="utf-8")
        assert main(["analyze", "--spec", str(spec_file)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown model 'bert'" in err

    def test_analyze_registered_model_without_pairing(self, capsys):
        """A downstream model with no paper dataset fails cleanly too."""
        from repro.api.registry import MODELS

        @MODELS.register("_cli_orphan")
        def _build():  # pragma: no cover - never invoked
            raise AssertionError

        try:
            assert main(["sweep", "--networks", "_cli_orphan",
                         "--mode", "serial"]) == 2
            err = capsys.readouterr().err
            assert err.count("\n") == 1
            assert "no default dataset" in err
        finally:
            MODELS._entries.pop("_cli_orphan")


class TestTraceConvert:
    """`repro trace convert` migrates artefacts between formats."""

    @staticmethod
    def seed_trace():
        from tests.conftest import make_trace

        return make_trace([(10, 1.0), (20, 2.0), (10, 1.0)])

    @staticmethod
    def payload(path):
        from repro.train.trace import TrainingTrace

        return json.dumps(
            TrainingTrace.load(path).frame().to_payload(), sort_keys=True
        )

    def test_v2_json_to_v3_binary(self, tmp_path, capsys):
        from repro.util.npt import is_npt

        src, dst = tmp_path / "t.json", tmp_path / "t.npt"
        self.seed_trace().save(src, version=2)
        assert main(["trace", "convert", str(src), str(dst)]) == 0
        out = capsys.readouterr().out
        assert "round trip verified" in out
        assert "3 iterations" in out
        assert is_npt(dst)
        assert self.payload(dst) == self.payload(src)

    def test_v3_binary_back_to_v2_json(self, tmp_path, capsys):
        trace = self.seed_trace()
        v2, v3, back = tmp_path / "a.json", tmp_path / "t.npt", tmp_path / "b.json"
        trace.save(v2, version=2)
        trace.save(v3)
        assert main(["trace", "convert", str(v3), str(back), "--to", "2"]) == 0
        # Byte-identical to a direct v2 dump: nothing lost in the binary hop.
        assert back.read_bytes() == v2.read_bytes()

    def test_unknown_target_version_clean_error(self, tmp_path, capsys):
        src = tmp_path / "t.json"
        self.seed_trace().save(src, version=2)
        assert main(
            ["trace", "convert", str(src), str(tmp_path / "o"), "--to", "99"]
        ) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown trace format version 99" in err
        assert "Traceback" not in err

    def test_missing_source_clean_error(self, tmp_path, capsys):
        assert main(
            ["trace", "convert", str(tmp_path / "absent.json"),
             str(tmp_path / "o.npt")]
        ) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("trace:")


class TestSweepPlanStore:
    def test_plan_store_dir_flag_populates_store(self, tmp_path, capsys):
        from repro.models.plan import PLAN_CACHE

        PLAN_CACHE.clear()  # force lowerings through the attached store
        plans = tmp_path / "plans"
        assert main(
            ["sweep", "--networks", "gnmt", "--scales", "0.01",
             "--mode", "serial", "--format", "json",
             "--plan-store-dir", str(plans)]
        ) == 0
        assert json.loads(capsys.readouterr().out)["mode"] == "serial"
        assert list(plans.glob("*.npt"))


class TestExperiments:
    def test_selected_ids(self, capsys):
        assert main(["experiments", "--scale", "0.01", "--ids", "table2"]) == 0
        out = capsys.readouterr().out
        assert "[table2]" in out

    def test_unknown_id_fails(self, capsys):
        assert main(["experiments", "--ids", "fig99"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "tables.txt"
        assert main(
            ["experiments", "--scale", "0.01", "--ids", "table2",
             "--output", str(target)]
        ) == 0
        assert "[table2]" in target.read_text()


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestServe:
    def test_check_smoke(self, capsys):
        """`repro serve --check` binds, self-requests, runs one job."""
        assert main(["serve", "--check", "--sweep-mode", "serial"]) == 0
        out = capsys.readouterr().out
        assert "serve check ok" in out
        assert "/stats" in out

    def test_check_with_disk_cache_and_budgets(self, tmp_path, capsys):
        assert main(
            ["serve", "--check", "--sweep-mode", "serial",
             "--cache-dir", str(tmp_path / "traces"),
             "--cache-max-entries", "4", "--workers", "1"]
        ) == 0
        assert "serve check ok" in capsys.readouterr().out
        assert (tmp_path / "traces").is_dir()

    def test_bad_worker_count_exits_2(self, capsys):
        assert main(["serve", "--check", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "workers must be positive" in err

    def test_bad_cache_budget_exits_2(self, capsys):
        assert main(["serve", "--check", "--cache-max-bytes", "-5"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "max_bytes" in err

    def test_unresolvable_host_exits_2(self, capsys):
        assert main(
            ["serve", "--check", "--host", "invalid.host.invalid"]
        ) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "cannot bind" in err

    def test_spec_file_supplies_options(self, tmp_path, capsys):
        spec_file = tmp_path / "serve.json"
        spec_file.write_text(
            json.dumps({"workers": 1, "sweep_mode": "serial"}),
            encoding="utf-8",
        )
        assert main(["serve", "--check", "--spec", str(spec_file)]) == 0
        assert "serve check ok" in capsys.readouterr().out

    def test_spec_unknown_field_exits_2(self, tmp_path, capsys):
        spec_file = tmp_path / "serve.json"
        spec_file.write_text(json.dumps({"bogus": 1}), encoding="utf-8")
        assert main(["serve", "--check", "--spec", str(spec_file)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "bogus" in err

    def test_inline_flags_override_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "serve.json"
        spec_file.write_text(
            json.dumps({"workers": 0, "sweep_mode": "serial"}),
            encoding="utf-8",
        )
        # The file's bad worker count is overridden inline, so it binds.
        assert main(
            ["serve", "--check", "--spec", str(spec_file), "--workers", "1"]
        ) == 0
        assert "serve check ok" in capsys.readouterr().out
