"""Unit tests for repro.hw.compute."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.compute import ComputeProfile, compute_time, parallel_efficiency
from repro.hw.config import paper_config


def big_kernel(flops: float = 1e12) -> ComputeProfile:
    return ComputeProfile(flops=flops, work_items=1 << 22, issue_efficiency=1.0)


class TestComputeTime:
    def test_zero_flops_is_free(self):
        profile = ComputeProfile(flops=0.0, work_items=64)
        assert compute_time(profile, paper_config(1)) == 0.0

    def test_big_kernel_near_peak(self):
        config = paper_config(1)
        elapsed = compute_time(big_kernel(), config)
        assert elapsed == pytest.approx(1e12 / config.peak_flops, rel=0.05)

    def test_halved_clock_doubles_time(self):
        slow = compute_time(big_kernel(), paper_config(2))
        fast = compute_time(big_kernel(), paper_config(1))
        assert slow / fast == pytest.approx(1.6e9 / 852e6, rel=0.01)

    def test_quartered_cus_quadruple_time(self):
        few = compute_time(big_kernel(), paper_config(3))
        many = compute_time(big_kernel(), paper_config(1))
        assert few / many == pytest.approx(4.0, rel=0.05)


class TestParallelEfficiency:
    def test_tiny_kernel_cannot_fill_machine(self):
        tiny = ComputeProfile(flops=1e6, work_items=64)
        assert parallel_efficiency(tiny, paper_config(1)) < 0.05

    def test_huge_kernel_fills_machine(self):
        assert parallel_efficiency(big_kernel(), paper_config(1)) == pytest.approx(1.0)

    def test_small_kernel_better_on_smaller_machine(self):
        # 16 workgroups fill 16 CUs but leave 64 CUs mostly idle.
        profile = ComputeProfile(flops=1e9, work_items=16 * 256)
        eff_64 = parallel_efficiency(profile, paper_config(1))
        eff_16 = parallel_efficiency(profile, paper_config(3))
        assert eff_16 > eff_64

    def test_tail_effect(self):
        # 65 workgroups on 64 CUs: second round nearly empty.
        profile = ComputeProfile(flops=1e9, work_items=65 * 256)
        full = ComputeProfile(flops=1e9, work_items=64 * 256)
        assert parallel_efficiency(profile, paper_config(1)) < parallel_efficiency(
            full, paper_config(1)
        )

    def test_efficiency_bounded(self):
        for work_items in (64, 1 << 12, 1 << 22):
            profile = ComputeProfile(flops=1e9, work_items=work_items)
            assert 0.0 < parallel_efficiency(profile, paper_config(1)) <= 1.0


class TestValidation:
    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeProfile(flops=-1.0, work_items=64)

    def test_zero_work_items_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeProfile(flops=1.0, work_items=0)

    def test_issue_efficiency_range(self):
        with pytest.raises(ConfigurationError):
            ComputeProfile(flops=1.0, work_items=64, issue_efficiency=1.2)

    def test_workgroups_rounded_up(self):
        profile = ComputeProfile(flops=1.0, work_items=257, workgroup_size=256)
        assert profile.workgroups == 2
