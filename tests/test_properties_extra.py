"""Additional property-based tests: selection strategies, traces, counters."""

from hypothesis import given, settings, strategies as st

from repro.core.baselines import (
    FrequentSelector,
    MedianSelector,
    PriorSelector,
    WorstSelector,
)
from repro.core.binning import bin_stats, bin_stats_equal_mass
from repro.core.projection import project_total
from repro.core.selection import select_from_bin
from repro.core.sl_stats import SlStatistics
from repro.hw.counters import CounterSet
from repro.train.trace import TrainingTrace
from tests.conftest import make_trace

sl_time_pairs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=400),
        st.floats(min_value=1e-4, max_value=50.0, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


# ---- every selector returns a sound selection ---------------------------


@given(sl_time_pairs)
@settings(max_examples=40)
def test_all_baselines_weights_cover_epoch(pairs):
    trace = make_trace(pairs)
    for selector in (
        FrequentSelector(), MedianSelector(), WorstSelector(),
        PriorSelector(warmup=2, window=5),
    ):
        selection = selector.select(trace)
        assert abs(selection.total_weight - len(trace.records)) < 1e-6


@given(sl_time_pairs)
@settings(max_examples=40)
def test_single_sl_selectors_pick_observed_sls(pairs):
    trace = make_trace(pairs)
    observed = set(trace.seq_lens())
    for selector in (FrequentSelector(), MedianSelector(), WorstSelector()):
        for seq_len in selector.select(trace).seq_lens:
            assert seq_len in observed


@given(sl_time_pairs)
@settings(max_examples=40)
def test_worst_bounds_frequent_and_median(pairs):
    trace = make_trace(pairs)
    actual = trace.total_time_s

    def error(selector):
        selection = selector.select(trace)
        return abs(project_total(selection, lambda p: p.record.time_s) - actual)

    worst = error(WorstSelector())
    assert worst >= error(FrequentSelector()) - 1e-9
    assert worst >= error(MedianSelector()) - 1e-9


# ---- strategy variants stay inside their bin -----------------------------


@given(sl_time_pairs, st.integers(min_value=1, max_value=12))
@settings(max_examples=40)
def test_every_strategy_picks_bin_member(pairs, k):
    statistics = SlStatistics.from_trace(make_trace(pairs))
    for binning in (bin_stats, bin_stats_equal_mass):
        for bin_ in binning(statistics, k):
            for strategy in ("closest-mean", "median-sl", "centroid-sl"):
                point = select_from_bin(bin_, strategy=strategy)
                assert point.seq_len in bin_.seq_lens


# ---- trace persistence round-trips ---------------------------------------


@given(sl_time_pairs)
@settings(max_examples=25)
def test_trace_round_trip(pairs):
    import tempfile
    from pathlib import Path

    trace = make_trace(pairs)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.json"
        trace.save(path)
        loaded = TrainingTrace.load(path)
    assert loaded.seq_lens() == trace.seq_lens()
    assert abs(loaded.total_time_s - trace.total_time_s) < 1e-9 * max(
        1.0, trace.total_time_s
    )


# ---- counters form a commutative monoid ----------------------------------

counter_values = st.builds(
    CounterSet,
    valu_insts=st.floats(min_value=0, max_value=1e12),
    dram_read_bytes=st.floats(min_value=0, max_value=1e12),
    dram_write_bytes=st.floats(min_value=0, max_value=1e12),
    l2_read_bytes=st.floats(min_value=0, max_value=1e12),
    write_stall_cycles=st.floats(min_value=0, max_value=1e12),
    busy_cycles=st.floats(min_value=0, max_value=1e12),
)


@given(counter_values, counter_values)
def test_counter_addition_commutes(a, b):
    assert a + b == b + a


@given(counter_values)
def test_counter_zero_is_identity(a):
    assert a + CounterSet.zero() == a


@given(counter_values, st.floats(min_value=0, max_value=1e3))
def test_counter_scaling_distributes(a, factor):
    doubled = a.scaled(factor)
    for field, value in a.as_dict().items():
        assert abs(getattr(doubled, field) - value * factor) <= 1e-6 * max(
            1.0, abs(value * factor)
        )
