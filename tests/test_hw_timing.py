"""Unit tests for repro.hw.timing."""

import pytest

from repro.hw.cache import TrafficProfile
from repro.hw.compute import ComputeProfile
from repro.hw.config import paper_config
from repro.hw.timing import WorkProfile, time_work
from repro.util.units import KIB, MIB


def compute_bound() -> WorkProfile:
    """Huge FLOP count, tiny traffic."""
    return WorkProfile(
        compute=ComputeProfile(flops=1e12, work_items=1 << 22),
        traffic=TrafficProfile(read_bytes=1e6, write_bytes=1e5),
    )


def memory_bound() -> WorkProfile:
    """Streaming kernel: no reuse, heavy traffic."""
    return WorkProfile(
        compute=ComputeProfile(flops=1e8, work_items=1 << 22),
        traffic=TrafficProfile(read_bytes=2e9, write_bytes=5e8),
    )


def latency_bound() -> WorkProfile:
    """Small, poorly parallel kernel with cache-resident reads."""
    return WorkProfile(
        compute=ComputeProfile(flops=1e6, work_items=2048),
        traffic=TrafficProfile(
            read_bytes=5e6, write_bytes=1e5,
            l1_reuse_fraction=0.6, l1_working_set=8 * KIB,
            l2_reuse_fraction=0.3, l2_working_set=1 * MIB,
        ),
    )


class TestBounds:
    def test_compute_bound_identified(self):
        _, breakdown, _ = time_work(compute_bound(), paper_config(1))
        assert breakdown.bound == "compute"

    def test_memory_bound_identified(self):
        _, breakdown, _ = time_work(memory_bound(), paper_config(1))
        assert breakdown.bound == "bandwidth"

    def test_total_includes_launch(self):
        config = paper_config(1)
        total, breakdown, _ = time_work(compute_bound(), config)
        assert total == pytest.approx(
            config.kernel_launch_s
            + max(breakdown.compute_s, breakdown.bandwidth_s, breakdown.latency_s)
        )


class TestConfigSensitivity:
    def test_compute_bound_insensitive_to_caches(self):
        base, _, _ = time_work(compute_bound(), paper_config(1))
        no_l1, _, _ = time_work(compute_bound(), paper_config(4))
        no_l2, _, _ = time_work(compute_bound(), paper_config(5))
        assert no_l1 == pytest.approx(base, rel=0.02)
        assert no_l2 == pytest.approx(base, rel=0.02)

    def test_memory_bound_insensitive_to_clock(self):
        base, _, _ = time_work(memory_bound(), paper_config(1))
        slow, _, _ = time_work(memory_bound(), paper_config(2))
        assert slow == pytest.approx(base, rel=0.05)

    def test_compute_bound_scales_with_clock(self):
        base, _, _ = time_work(compute_bound(), paper_config(1))
        slow, _, _ = time_work(compute_bound(), paper_config(2))
        assert slow / base == pytest.approx(1.6e9 / 852e6, rel=0.02)

    def test_latency_bound_hurt_by_l1_disable(self):
        base, _, _ = time_work(latency_bound(), paper_config(1))
        no_l1, _, _ = time_work(latency_bound(), paper_config(4))
        assert no_l1 > base * 1.05

    def test_l2_disable_hurts_l2_resident_reads(self):
        base, bd1, _ = time_work(latency_bound(), paper_config(1))
        no_l2, bd5, _ = time_work(latency_bound(), paper_config(5))
        assert bd5.traffic.dram_read_bytes > bd1.traffic.dram_read_bytes
        assert no_l2 >= base


class TestCounters:
    def test_valu_insts_proportional_to_flops(self):
        config = paper_config(1)
        _, _, counters = time_work(compute_bound(), config)
        assert counters.valu_insts == pytest.approx(
            1e12 / (config.wave_size * config.flops_per_lane_per_clk)
        )

    def test_busy_cycles_match_time(self):
        config = paper_config(1)
        total, _, counters = time_work(memory_bound(), config)
        assert counters.busy_cycles == pytest.approx(total * config.gclk_hz)

    def test_write_stalls_track_write_traffic(self):
        light = WorkProfile(
            compute=ComputeProfile(flops=1e8, work_items=1 << 20),
            traffic=TrafficProfile(read_bytes=1e9, write_bytes=1e6),
        )
        heavy = WorkProfile(
            compute=ComputeProfile(flops=1e8, work_items=1 << 20),
            traffic=TrafficProfile(read_bytes=1e9, write_bytes=1e9),
        )
        _, _, light_counters = time_work(light, paper_config(1))
        _, _, heavy_counters = time_work(heavy, paper_config(1))
        assert heavy_counters.write_stall_cycles > light_counters.write_stall_cycles

    def test_no_reads_no_latency_term(self):
        work = WorkProfile(
            compute=ComputeProfile(flops=1e9, work_items=1 << 16),
            traffic=TrafficProfile(read_bytes=0.0, write_bytes=1e6),
        )
        _, breakdown, _ = time_work(work, paper_config(1))
        assert breakdown.latency_s == 0.0
