"""Binary columnar storage: the .npt container and the v3 trace format.

Covers the container layer (alignment, zero-copy read-only views,
malformed-file rejection), the v3 trace round trip (bit-identical to
the v2 JSON load across synthetic and simulated golden fixtures), and
the mmap lifecycle (frames outlive deletion of their backing file).
"""

import json

import numpy as np
import pytest

from repro.errors import StorageError, TraceError
from repro.train.frame import SCHEMA_V3, TraceFrame
from repro.train.trace import TrainingTrace
from repro.util.npt import MAGIC, ColumnStore, is_npt, write_columns

from tests.conftest import make_record, make_trace


class TestContainer:
    def test_round_trip_preserves_dtypes_shapes_values(self, tmp_path):
        path = tmp_path / "t.npt"
        columns = [
            ("ints", np.arange(7, dtype=np.int64)),
            ("floats", np.linspace(0.0, 1.0, 5)),
            ("matrix", np.arange(12, dtype=np.float64).reshape(3, 4)),
            ("empty", np.empty(0, dtype=np.int64)),
        ]
        write_columns(path, "test.schema.v1", {"note": "hi"}, columns)
        store = ColumnStore(path)
        assert store.schema == "test.schema.v1"
        assert store.meta == {"note": "hi"}
        assert store.column_names() == ("ints", "floats", "matrix", "empty")
        for name, array in columns:
            loaded = store.column(name)
            assert loaded.dtype == array.dtype
            assert loaded.shape == array.shape
            assert np.array_equal(loaded, array)

    def test_blobs_are_64_byte_aligned(self, tmp_path):
        path = tmp_path / "t.npt"
        write_columns(
            path,
            "s",
            {},
            [("a", np.arange(3, dtype=np.int64)), ("b", np.arange(5.0))],
        )
        store = ColumnStore(path)
        for name in ("a", "b"):
            descriptor = store._columns[name]
            assert (store._data_start + descriptor["offset"]) % 64 == 0

    def test_views_are_zero_copy_and_read_only(self, tmp_path):
        path = tmp_path / "t.npt"
        write_columns(path, "s", {}, [("a", np.arange(4, dtype=np.int64))])
        store = ColumnStore(path)
        column = store.column("a")
        assert column.base is not None  # a view, not an owning copy
        with pytest.raises(ValueError):
            column[0] = 99

    def test_is_npt_sniffs_magic(self, tmp_path):
        binary = tmp_path / "t.npt"
        write_columns(binary, "s", {}, [("a", np.zeros(1))])
        assert is_npt(binary)
        text = tmp_path / "t.json"
        text.write_text("{}")
        assert not is_npt(text)
        assert not is_npt(tmp_path / "missing.npt")

    def test_unknown_column_rejected(self, tmp_path):
        path = tmp_path / "t.npt"
        write_columns(path, "s", {}, [("a", np.zeros(1))])
        with pytest.raises(StorageError, match="no column 'b'"):
            ColumnStore(path).column("b")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.npt"
        path.touch()
        with pytest.raises(StorageError, match="empty"):
            ColumnStore(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "t.npt"
        path.write_bytes(b"NOTANPT!" + b"\x00" * 64)
        with pytest.raises(StorageError, match="bad magic"):
            ColumnStore(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "t.npt"
        path.write_bytes(MAGIC + (2**32).to_bytes(8, "little"))
        with pytest.raises(StorageError, match="truncated header"):
            ColumnStore(path)

    def test_truncated_data_rejected(self, tmp_path):
        path = tmp_path / "t.npt"
        write_columns(path, "s", {}, [("a", np.arange(64, dtype=np.int64))])
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) - 16])
        with pytest.raises(StorageError, match="past end of file"):
            ColumnStore(path)


def seq2seq_trace() -> TrainingTrace:
    trace = TrainingTrace("m", "d", "c", 32)
    trace.records.extend(
        [
            make_record(0, 10, 1.0, tgt_len=8),
            make_record(1, 20, 2.0, group_times={"GEMM-2": 0.25, "GEMM-1": 1.5}),
            make_record(2, 10, 1.0, tgt_len=8),
        ]
    )
    trace.autotune_s = 1.25
    trace.eval_s = 0.75
    return trace


def payload_of(trace: TrainingTrace) -> str:
    return json.dumps(trace.frame().to_payload(), sort_keys=True)


class TestTraceV3:
    def test_default_save_is_binary(self, tmp_path):
        path = tmp_path / "t.npt"
        seq2seq_trace().save(path)
        assert is_npt(path)
        assert ColumnStore(path).schema == SCHEMA_V3

    def test_round_trip_bit_identity(self, tmp_path):
        trace = seq2seq_trace()
        path = tmp_path / "t.npt"
        trace.save(path)
        loaded = TrainingTrace.load(path)
        assert payload_of(loaded) == payload_of(trace)
        assert loaded.records == trace.records

    def test_all_versions_load_bit_identically(self, tmp_path):
        trace = seq2seq_trace()
        expected = payload_of(trace)
        for version, name in ((1, "v1.json"), (2, "v2.json"), (3, "v3.npt")):
            path = tmp_path / name
            trace.save(path, version=version)
            assert payload_of(TrainingTrace.load(path)) == expected

    def test_no_tgt_sentinel_survives(self, tmp_path):
        trace = make_trace([(10, 1.0), (20, 2.0)])
        path = tmp_path / "t.npt"
        trace.save(path)
        loaded = TrainingTrace.load(path)
        assert [r.tgt_len for r in loaded.records] == [None, None]

    def test_profile_pool_stays_interned(self, tmp_path):
        trace = seq2seq_trace()
        path = tmp_path / "t.npt"
        trace.save(path)
        frame = TraceFrame.load(path)
        assert len(frame.profiles) == 2
        assert frame.profile_id.tolist() == [0, 1, 0]

    def test_columns_view_the_container(self, tmp_path):
        path = tmp_path / "t.npt"
        seq2seq_trace().save(path)
        frame = TraceFrame.load(path)
        assert frame.storage is not None
        assert frame.storage.nbytes == path.stat().st_size
        for name in ("index", "epoch", "seq_len", "tgt_len", "time_s"):
            assert getattr(frame, name).base is not None

    def test_cold_load_defers_profile_pool(self, tmp_path):
        path = tmp_path / "t.npt"
        seq2seq_trace().save(path)
        frame = TraceFrame.load(path)
        # A cold load builds no per-row or per-profile Python objects;
        # the pool materialises (once) on first touch.
        assert callable(frame._profiles)
        assert len(frame.profiles) == 2
        assert not callable(frame._profiles)
        assert frame.profiles is frame.profiles

    def test_with_phases_keeps_storage(self, tmp_path):
        path = tmp_path / "t.npt"
        seq2seq_trace().save(path)
        frame = TraceFrame.load(path)
        assert frame.with_phases(9.0, 9.0).storage is frame.storage

    def test_frame_outlives_backing_file_deletion(self, tmp_path):
        trace = seq2seq_trace()
        path = tmp_path / "t.npt"
        trace.save(path)
        frame = TraceFrame.load(path)
        path.unlink()  # POSIX: the mapping pins the pages
        assert json.dumps(frame.to_payload(), sort_keys=True) == payload_of(trace)

    def test_unknown_binary_schema_rejected(self, tmp_path):
        path = tmp_path / "t.npt"
        write_columns(path, "repro.training-trace.v99", {}, [("a", np.zeros(1))])
        with pytest.raises(TraceError, match="unknown binary trace schema"):
            TraceFrame.load(path)

    def test_unknown_save_version_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="unknown trace format"):
            seq2seq_trace().frame().save(tmp_path / "t.npt", version=99)


class TestGoldenFixtures:
    """Simulated epochs round-trip bit-identically across every format."""

    @pytest.mark.parametrize("network", ["gnmt", "ds2"])
    def test_simulated_epoch_bit_identity(self, network, tmp_path):
        from repro.api.engine import AnalysisEngine
        from repro.api.spec import AnalysisSpec

        engine = AnalysisEngine()
        trace = engine.trace_for(AnalysisSpec(network=network, scale=0.02))
        expected = payload_of(trace)
        v2 = tmp_path / "t.json"
        v3 = tmp_path / "t.npt"
        trace.save(v2, version=2)
        trace.save(v3)
        assert payload_of(TrainingTrace.load(v2)) == expected
        assert payload_of(TrainingTrace.load(v3)) == expected
