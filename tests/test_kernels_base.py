"""Unit tests for the kernel invocation record."""

from repro.kernels.base import FLOAT_BYTES, KernelInvocation, make_invocation


def invocation(**overrides) -> KernelInvocation:
    base = dict(
        name="k_test",
        op="test",
        group="scalar-op",
        shape=(4, 8),
        flops=100.0,
        work_items=256,
        read_bytes=1024.0,
        write_bytes=512.0,
        issue_efficiency=0.5,
    )
    base.update(overrides)
    return make_invocation(**base)


class TestMakeInvocation:
    def test_fields_propagate(self):
        inv = invocation()
        assert inv.name == "k_test"
        assert inv.flops == 100.0
        assert inv.work.traffic.read_bytes == 1024.0
        assert inv.work.compute.issue_efficiency == 0.5

    def test_float_width(self):
        assert FLOAT_BYTES == 4

    def test_hashable_and_equal(self):
        assert invocation() == invocation()
        assert hash(invocation()) == hash(invocation())

    def test_different_shapes_distinct(self):
        assert invocation(shape=(4, 8)) != invocation(shape=(8, 4))

    def test_repr_compact(self):
        text = repr(invocation())
        assert "k_test" in text
        assert "4x8" in text
