"""Property-based tests (hypothesis) on the traffic layer.

Invariants the ISSUEs pin down:

* a seeded arrival process plus a batching policy is bit-deterministic
  end to end (arrivals, batch composition, padded shapes),
* the columnar formation path and the vectorized serve fast path are
  **bit-identical** to their retained scalar references across
  policies × arrival processes × seeds × drift schedules, and
* streaming identification over a traffic feed equals batch
  identification whenever the request mix is stationary.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.api.registry import (
    BATCHING,
    DATASETS,
    build_batching,
    default_dataset,
)
from repro.core.seqpoint import SeqPointSelector
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.models.gnmt import build_gnmt
from repro.stream import StreamingIdentifier, StreamingSlStatistics
from repro.traffic import (
    ARRIVAL_KINDS,
    TrafficFeed,
    TrafficPhase,
    TrafficSimulator,
    build_arrival_process,
    form_batches,
    sample_requests,
)
from repro.traffic.batcher import FormedBatch
from repro.traffic.simulator import ServedTraffic, _fifo_prefix
from repro.train.frame import NO_TGT
from tests.conftest import make_trace

# ---- strategy helpers -------------------------------------------------

lengths_lists = st.lists(
    st.integers(min_value=1, max_value=300), min_size=1, max_size=60
)


@st.composite
def traffic_case(draw):
    lengths = draw(lengths_lists)
    kind = draw(st.sampled_from(ARRIVAL_KINDS))
    rate = draw(st.floats(min_value=1.0, max_value=200.0, allow_nan=False))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    policy_name = draw(st.sampled_from(BATCHING.available()))
    batch_size = draw(st.integers(min_value=1, max_value=16))
    max_wait_s = draw(
        st.floats(min_value=0.01, max_value=2.0, allow_nan=False)
    )
    return lengths, kind, rate, seed, policy_name, batch_size, max_wait_s


def _form(case):
    lengths, kind, rate, seed, policy_name, batch_size, max_wait_s = case
    seq_len = np.asarray(lengths, dtype=np.int64)
    tgt_len = np.full(seq_len.size, NO_TGT, dtype=np.int64)
    arrival_s = build_arrival_process(kind, rate=rate).times(
        seq_len.size, seed
    )
    policy = BATCHING.create(policy_name, batch_size)
    return arrival_s, form_batches(
        arrival_s, seq_len, tgt_len, policy, max_wait_s
    )


@given(traffic_case())
@settings(max_examples=40, deadline=None)
def test_seeded_traffic_is_bit_deterministic(case):
    arrival_a, batches_a = _form(case)
    arrival_b, batches_b = _form(case)
    assert np.array_equal(arrival_a, arrival_b)
    assert len(batches_a) == len(batches_b)
    for one, two in zip(batches_a, batches_b):
        assert one.form_time_s == two.form_time_s
        assert np.array_equal(one.members, two.members)
        assert (one.seq_len, one.tgt_len) == (two.seq_len, two.tgt_len)


@given(traffic_case())
@settings(max_examples=40, deadline=None)
def test_batches_partition_the_request_stream(case):
    lengths, _, _, _, _, batch_size, _ = case
    _, batches = _form(case)
    members = np.concatenate([batch.members for batch in batches])
    assert sorted(members.tolist()) == list(range(len(lengths)))
    assert all(len(batch) <= batch_size for batch in batches)
    assert all(
        batch.seq_len >= 1 and batch.tgt_len == NO_TGT for batch in batches
    )


@given(traffic_case(), st.booleans())
@settings(max_examples=40, deadline=None)
def test_vectorized_formation_matches_scalar(case, with_tgt):
    lengths, kind, rate, seed, policy_name, batch_size, max_wait_s = case
    seq_len = np.asarray(lengths, dtype=np.int64)
    tgt_len = (
        seq_len // 2 + 1
        if with_tgt
        else np.full(seq_len.size, NO_TGT, dtype=np.int64)
    )
    arrival_s = build_arrival_process(kind, rate=rate).times(
        seq_len.size, seed
    )
    policy = BATCHING.create(policy_name, batch_size)
    fast = form_batches(
        arrival_s, seq_len, tgt_len, policy, max_wait_s, vectorized=True
    )
    slow = form_batches(
        arrival_s, seq_len, tgt_len, policy, max_wait_s, vectorized=False
    )
    assert len(fast) == len(slow)
    for one, two in zip(fast, slow):
        assert one.form_time_s == two.form_time_s  # bit-exact float
        assert np.array_equal(one.members, two.members)
        assert one.members.dtype == two.members.dtype
        assert (one.seq_len, one.tgt_len) == (two.seq_len, two.tgt_len)


# ---- the vectorized device FIFO ---------------------------------------


@st.composite
def fifo_case(draw):
    """Formation instants (non-decreasing) plus positive device times."""
    times = draw(
        st.lists(
            st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    # Gaps of zero force shared-flush pileups; large gaps force idle
    # runs; in-between gaps exercise chain↔idle transitions.
    gaps = draw(
        st.lists(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            ),
            min_size=len(times),
            max_size=len(times),
        )
    )
    return np.cumsum(gaps), np.asarray(times, dtype=np.float64)


@given(fifo_case())
@settings(max_examples=60, deadline=None)
def test_fifo_prefix_bit_identical_to_scalar_recurrence(case):
    form_s, time_s = case
    start_s, free_s = _fifo_prefix(form_s, time_s)
    device_free = 0.0
    for i in range(form_s.size):
        start = max(float(form_s[i]), device_free)
        device_free = start + float(time_s[i])
        assert start_s[i] == start  # bit-exact, not approx
        assert free_s[i] == device_free


# ---- memoized serve == per-batch serve --------------------------------


_SCENARIO: dict = {}


def _serving_scenario():
    """One shared gnmt corpus + device; measurements memoize across
    examples, so each hypothesis case only pays for novel shapes."""
    if not _SCENARIO:
        dataset_name = default_dataset("gnmt")
        corpus = DATASETS.create(dataset_name, scale=0.02)
        train, _ = corpus.split(0.02, seed=7)
        _SCENARIO.update(
            model=build_gnmt(),
            dataset_name=dataset_name,
            train=train,
            device=GpuDevice(paper_config(1)),
        )
    return _SCENARIO


@st.composite
def serve_case(draw):
    policy_name = draw(st.sampled_from(BATCHING.available()))
    kind = draw(st.sampled_from(ARRIVAL_KINDS))
    seed = draw(st.integers(min_value=0, max_value=5))
    drifting = draw(st.booleans())
    return policy_name, kind, seed, drifting


@given(serve_case())
@settings(max_examples=10, deadline=None)
def test_memoized_serve_bit_identical_to_scalar(case):
    policy_name, kind, seed, drifting = case
    scenario = _serving_scenario()
    policy = build_batching(
        policy_name, 8, dataset=scenario["dataset_name"]
    )
    phases = (
        (
            TrafficPhase(0.5, quantile_hi=0.6),
            TrafficPhase(0.5, quantile_lo=0.4),
        )
        if drifting
        else (TrafficPhase(1.0),)
    )
    requests = sample_requests(scenario["train"], phases, 48, seed)
    arrival_s = build_arrival_process(kind, rate=96.0).times(
        len(requests), seed
    )
    batches = form_batches(
        arrival_s, requests.seq_len, requests.tgt_len, policy, 0.05
    )

    def serve(memoized):
        simulator = TrafficSimulator(
            scenario["model"],
            scenario["dataset_name"],
            policy,
            scenario["device"],
            memoized=memoized,
        )
        return simulator.serve(requests, arrival_s, batches)

    fast = serve(True)
    slow = serve(False)
    assert fast.frame.to_payload() == slow.frame.to_payload()
    assert fast.frame.profiles == slow.frame.profiles
    assert np.array_equal(fast.queue_wait_s, slow.queue_wait_s)
    assert np.array_equal(fast.latency_s, slow.latency_s)
    assert fast.makespan_s == slow.makespan_s
    assert fast.latency_percentiles() == slow.latency_percentiles()
    assert fast.queue_wait_percentiles() == slow.queue_wait_percentiles()


# ---- streaming over traffic == batch identification -------------------


@st.composite
def stationary_served(draw):
    """A synthetic served run whose per-SL batch times never drift."""
    seq_lens = draw(
        st.lists(
            st.integers(min_value=1, max_value=120), min_size=2, max_size=40
        )
    )
    time_of = {
        sl: 1e-3 * (1.0 + (sl % 7)) + sl * 1e-4 for sl in set(seq_lens)
    }
    frame = make_trace([(sl, time_of[sl]) for sl in seq_lens]).frame()
    # Formation instants: non-decreasing with occasional shared flushes.
    gaps = draw(
        st.lists(
            st.sampled_from([0.0, 0.1]),
            min_size=len(seq_lens),
            max_size=len(seq_lens),
        )
    )
    form_times = np.cumsum(gaps)
    batches = tuple(
        FormedBatch(
            form_time_s=float(form_times[i]),
            members=np.asarray([i], dtype=np.int64),
            seq_len=int(frame.seq_len[i]),
            tgt_len=int(frame.tgt_len[i]),
        )
        for i in range(len(seq_lens))
    )
    zeros = np.zeros(len(seq_lens), dtype=np.float64)
    return ServedTraffic(
        frame=frame,
        batches=batches,
        arrival_s=zeros,
        queue_wait_s=zeros,
        latency_s=zeros,
        makespan_s=float(form_times[-1]),
    )


@given(stationary_served())
@settings(max_examples=40, deadline=None)
def test_streaming_on_stationary_traffic_equals_batch(served):
    # patience too large to ever converge: the identifier consumes the
    # whole feed, so its final selection is over exactly the data the
    # batch selector sees.
    run = StreamingIdentifier(
        SeqPointSelector(), cadence=1, patience=10**9
    ).run(
        TrafficFeed(served),
        stats=StreamingSlStatistics.for_frame(served.frame),
    )
    assert run.iterations_consumed == len(served.frame)
    batch = SeqPointSelector().select(served.frame.to_trace())
    streamed = [
        (point.seq_len, point.tgt_len, point.weight, point.record.time_s)
        for point in run.selection.points
    ]
    batched = [
        (point.seq_len, point.tgt_len, point.weight, point.record.time_s)
        for point in batch.selection.points
    ]
    assert streamed == batched
    assert run.identification_error_pct == batch.identification_error_pct
