"""Unit tests for the SeqPoint selector (paper Fig 10)."""

import pytest

from repro.core.seqpoint import SeqPointSelector
from repro.errors import SelectionError
from tests.conftest import make_trace


class TestFewUniqueSls:
    def test_all_unique_become_seqpoints(self):
        trace = make_trace([(10, 1.0), (10, 1.0), (20, 2.0), (30, 3.0)])
        result = SeqPointSelector(max_unique=10).select(trace)
        assert result.k == 0  # no binning path
        assert sorted(result.selection.seq_lens) == [10, 20, 30]

    def test_weights_are_frequencies(self):
        trace = make_trace([(10, 1.0)] * 4 + [(20, 2.0)] * 6)
        result = SeqPointSelector().select(trace)
        weights = {p.seq_len: p.weight for p in result.seqpoints}
        assert weights == {10: 4.0, 20: 6.0}

    def test_projection_exact_without_noise(self):
        trace = make_trace([(10, 1.0)] * 4 + [(20, 2.0)] * 6)
        result = SeqPointSelector().select(trace)
        assert result.identification_error_pct == pytest.approx(0.0, abs=1e-9)


class TestBinningPath:
    def linear(self, unique=40, repeats=3):
        pairs = []
        for sl in range(10, 10 + unique * 5, 5):
            pairs.extend([(sl, sl * 0.01)] * repeats)
        return make_trace(pairs)

    def test_binning_engaged_above_threshold(self):
        result = SeqPointSelector(max_unique=10, initial_bins=5).select(
            self.linear()
        )
        assert result.k >= 5
        assert len(result.selection) <= result.k

    def test_error_threshold_met(self):
        result = SeqPointSelector(error_threshold_pct=1.0).select(self.linear())
        assert result.identification_error_pct < 1.0

    def test_tighter_threshold_more_bins(self):
        loose = SeqPointSelector(error_threshold_pct=20.0).select(self.linear())
        tight = SeqPointSelector(error_threshold_pct=0.05).select(self.linear())
        assert tight.k >= loose.k

    def test_k_capped_at_unique_sls(self):
        trace = self.linear(unique=12)
        result = SeqPointSelector(
            initial_bins=5, error_threshold_pct=1e-9
        ).select(trace)
        assert result.k <= 12

    def test_max_bins_respected(self):
        result = SeqPointSelector(
            error_threshold_pct=1e-9, max_bins=7
        ).select(self.linear())
        assert result.k <= 7

    def test_weights_cover_epoch(self):
        trace = self.linear()
        result = SeqPointSelector().select(trace)
        assert result.selection.total_weight == pytest.approx(len(trace))

    def test_projection_near_actual(self):
        trace = self.linear()
        result = SeqPointSelector().select(trace)
        assert result.projected_total_s == pytest.approx(
            result.actual_total_s, rel=0.02
        )


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(SelectionError):
            SeqPointSelector(max_unique=0)
        with pytest.raises(SelectionError):
            SeqPointSelector(initial_bins=0)
        with pytest.raises(SelectionError):
            SeqPointSelector(error_threshold_pct=0.0)
        with pytest.raises(SelectionError):
            SeqPointSelector(initial_bins=5, max_bins=4)
