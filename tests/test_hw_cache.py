"""Unit tests for repro.hw.cache."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.cache import TrafficProfile, capacity_factor, resolve_traffic
from repro.hw.config import paper_config
from repro.util.units import KIB, MIB


def profile(**overrides) -> TrafficProfile:
    base = dict(
        read_bytes=1e6,
        write_bytes=1e5,
        l1_reuse_fraction=0.5,
        l1_working_set=8 * KIB,
        l2_reuse_fraction=0.5,
        l2_working_set=1 * MIB,
    )
    base.update(overrides)
    return TrafficProfile(**base)


class TestCapacityFactor:
    def test_fits_fully(self):
        assert capacity_factor(1000, 2000) == 1.0

    def test_overflow_proportional(self):
        assert capacity_factor(8 * MIB, 4 * MIB) == pytest.approx(0.5)

    def test_disabled_cache_captures_nothing(self):
        assert capacity_factor(100, 0) == 0.0

    def test_empty_working_set_fully_captured(self):
        assert capacity_factor(0, 1024) == 1.0


class TestResolveTraffic:
    def test_hits_reduce_downstream_traffic(self):
        resolved = resolve_traffic(profile(), paper_config(1))
        assert resolved.l2_read_bytes < resolved.l1_read_bytes
        assert resolved.dram_read_bytes < resolved.l2_read_bytes

    def test_l1_disabled_pushes_reads_to_l2(self):
        resolved = resolve_traffic(profile(), paper_config(4))
        assert resolved.l1_hit_rate == 0.0
        assert resolved.l2_read_bytes == pytest.approx(1e6)

    def test_l2_disabled_pushes_reads_to_dram(self):
        resolved = resolve_traffic(profile(), paper_config(5))
        assert resolved.l2_hit_rate == 0.0
        assert resolved.dram_read_bytes == pytest.approx(resolved.l2_read_bytes)

    def test_l2_absorbs_spilled_l1_reuse(self):
        # With L1 off, the reuse L1 would have caught lands in L2.
        with_l1 = resolve_traffic(profile(), paper_config(1))
        without_l1 = resolve_traffic(profile(), paper_config(4))
        assert without_l1.l2_hit_rate > with_l1.l2_hit_rate

    def test_writes_always_reach_dram(self):
        for index in (1, 4, 5):
            resolved = resolve_traffic(profile(), paper_config(index))
            assert resolved.dram_write_bytes == pytest.approx(1e5)

    def test_oversized_working_set_degrades_hits(self):
        small = resolve_traffic(profile(l1_working_set=4 * KIB), paper_config(1))
        large = resolve_traffic(profile(l1_working_set=64 * KIB), paper_config(1))
        assert large.l1_hit_rate < small.l1_hit_rate

    def test_dram_bytes_totals(self):
        resolved = resolve_traffic(profile(), paper_config(1))
        assert resolved.dram_bytes == pytest.approx(
            resolved.dram_read_bytes + resolved.dram_write_bytes
        )


class TestValidation:
    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficProfile(read_bytes=-1, write_bytes=0)

    def test_reuse_fraction_range(self):
        with pytest.raises(ConfigurationError):
            TrafficProfile(read_bytes=0, write_bytes=0, l1_reuse_fraction=1.5)

    def test_scaled_preserves_working_sets(self):
        scaled = profile().scaled(2.0)
        assert scaled.read_bytes == pytest.approx(2e6)
        assert scaled.l1_working_set == 8 * KIB

    def test_scaled_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            profile().scaled(-1.0)
