"""Integration tests for the analysis engine (tiny corpus scale)."""

import json

import pytest

from repro.api import (
    AnalysisEngine,
    AnalysisSpec,
    ProjectionSpec,
    TraceCache,
)
from repro.core.seqpoint import SeqPointSelector
from repro.experiments.setups import epoch_trace

SCALE = 0.01


@pytest.fixture(scope="module")
def engine() -> AnalysisEngine:
    return AnalysisEngine()


@pytest.fixture(scope="module")
def gnmt_result(engine):
    return engine.run(
        AnalysisSpec(network="gnmt", scale=SCALE),
        ProjectionSpec(targets=(1, 3)),
    )


class TestRun:
    def test_selection_shape(self, gnmt_result):
        assert gnmt_result.method == "seqpoint"
        assert gnmt_result.k is not None and gnmt_result.k >= 1
        assert len(gnmt_result) == len(gnmt_result.points)
        assert gnmt_result.identification_error_pct < 5.0
        # Weights account for every iteration of the epoch.
        assert sum(p.weight for p in gnmt_result.points) == pytest.approx(
            gnmt_result.iterations
        )

    def test_projections(self, gnmt_result):
        configs = [p.config for p in gnmt_result.projections]
        assert configs == [1, 3]
        base, target = gnmt_result.projections
        assert base.config_name == "config#1"
        assert base.projected_uplift_pct == 0.0
        assert base.actual_uplift_pct == 0.0
        # Config #3 has a quarter of the CUs: slower, negative uplift.
        assert target.actual_time_s > base.actual_time_s
        assert target.actual_uplift_pct < 0.0
        assert target.error_pct < 10.0

    def test_result_is_json_serialisable(self, gnmt_result):
        payload = json.loads(json.dumps(gnmt_result.to_dict()))
        assert payload["spec"]["network"] == "gnmt"
        assert payload["method"] == "seqpoint"
        assert len(payload["projections"]) == 2
        assert payload["iterations_to_profile"] == len(payload["points"])

    def test_matches_imperative_pipeline(self, engine, gnmt_result):
        """The declarative path reproduces the hand-wired numbers."""
        trace = epoch_trace("gnmt", 1, SCALE)
        expected = SeqPointSelector().select(trace)
        assert gnmt_result.identification_error_pct == pytest.approx(
            expected.identification_error_pct
        )
        assert gnmt_result.actual_total_s == pytest.approx(trace.total_time_s)
        assert tuple(p.seq_len for p in gnmt_result.points) == tuple(
            p.seq_len for p in expected.seqpoints
        )

    def test_default_projection_is_identification_config(self, engine):
        result = engine.run(AnalysisSpec(network="gnmt", scale=SCALE, config=2))
        assert [p.config for p in result.projections] == [2]

    def test_baseline_selector_has_no_binning(self, engine):
        result = engine.run(
            AnalysisSpec(network="gnmt", scale=SCALE, selector="median")
        )
        assert result.method == "median"
        assert result.k is None
        assert len(result) == 1

    def test_selector_kwargs_forwarded(self, engine):
        loose = engine.run(
            AnalysisSpec(
                network="gnmt", scale=SCALE,
                selector_kwargs={"error_threshold_pct": 50.0},
            )
        )
        assert loose.k is not None
        # A 50% threshold is satisfied by the very first k.
        assert loose.k <= 5


class TestCaching:
    def test_second_run_hits_cache(self):
        engine = AnalysisEngine()
        spec = AnalysisSpec(network="gnmt", scale=SCALE)
        engine.run(spec)
        misses = engine.cache.stats()["misses"]
        assert misses == 1
        hits_before = engine.cache.stats()["hits"]
        engine.run(spec)
        stats = engine.cache.stats()
        assert stats["misses"] == misses  # no re-simulation
        assert stats["hits"] > hits_before

    def test_selector_sweep_shares_trace(self):
        engine = AnalysisEngine()
        for selector in ("seqpoint", "frequent", "median"):
            engine.run(AnalysisSpec(network="gnmt", scale=SCALE,
                                    selector=selector))
        assert engine.cache.stats()["misses"] == 1

    def test_disk_cache_survives_engines(self, tmp_path):
        spec = AnalysisSpec(network="gnmt", scale=SCALE)
        first = AnalysisEngine(cache=TraceCache(tmp_path))
        result_a = first.run(spec)
        assert first.cache.stats()["misses"] == 1

        second = AnalysisEngine(cache=TraceCache(tmp_path))
        result_b = second.run(spec)
        assert second.cache.stats()["misses"] == 0
        assert result_b.to_dict() == result_a.to_dict()

    def test_engines_share_nothing_by_default(self):
        a, b = AnalysisEngine(), AnalysisEngine()
        spec = AnalysisSpec(network="gnmt", scale=SCALE)
        a.run(spec)
        b.run(spec)
        assert a.cache.stats()["misses"] == 1
        assert b.cache.stats()["misses"] == 1


class TestRunMany:
    def test_results_in_input_order(self):
        engine = AnalysisEngine()
        methods = ("worst", "seqpoint", "median", "frequent")
        specs = [
            AnalysisSpec(network="gnmt", scale=SCALE, selector=method)
            for method in methods
        ]
        results = engine.run_many(specs)
        assert tuple(result.method for result in results) == methods

    def test_shared_work_deduplicated(self):
        engine = AnalysisEngine()
        specs = [
            AnalysisSpec(network="gnmt", scale=SCALE, selector=method)
            for method in ("seqpoint", "frequent", "median", "prior")
        ]
        engine.run_many(specs, max_workers=4)
        # One scenario: exactly one simulated identification epoch.
        assert engine.cache.stats()["misses"] == 1

    def test_empty_batch(self):
        assert AnalysisEngine().run_many([]) == []

    def test_matches_sequential_runs(self):
        engine = AnalysisEngine()
        specs = [
            AnalysisSpec(network="gnmt", scale=SCALE),
            AnalysisSpec(network="gnmt", scale=SCALE, selector="median"),
        ]
        batched = engine.run_many(specs)
        sequential = [engine.run(spec) for spec in specs]
        for many, one in zip(batched, sequential):
            assert many.to_dict() == one.to_dict()
