"""Unit tests for the string-keyed component registries."""

import pytest

from repro.api.registry import (
    BATCHING,
    DATASETS,
    MODELS,
    SELECTORS,
    Registry,
    build_batching,
    dataset_pad_multiple,
    default_batching,
    default_dataset,
)
from repro.core.seqpoint import SeqPointSelector
from repro.data.batching import PooledBucketing, SortaGradBatching
from repro.errors import ConfigurationError
from repro.models.spec import Model


class TestRegistry:
    def test_register_returns_factory(self):
        registry = Registry("widget")

        @registry.register("a")
        def make_a():
            return "a!"

        assert make_a() == "a!"
        assert registry.create("a") == "a!"

    def test_available_is_sorted(self):
        registry = Registry("widget")
        registry.register("zeta")(lambda: None)
        registry.register("alpha")(lambda: None)
        assert registry.available() == ("alpha", "zeta")

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.register("a")(lambda: None)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("a")(lambda: None)

    def test_unknown_name_lists_available(self):
        registry = Registry("widget")
        registry.register("alpha")(lambda: None)
        registry.register("beta")(lambda: None)
        with pytest.raises(ConfigurationError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "widget" in message
        assert "'gamma'" in message
        assert "alpha" in message and "beta" in message

    def test_contains_and_len(self):
        registry = Registry("widget")
        registry.register("a")(lambda: None)
        assert "a" in registry
        assert "b" not in registry
        assert len(registry) == 1


class TestBuiltinEntries:
    def test_models(self):
        assert MODELS.available() == (
            "cnn", "convs2s", "ds2", "gnmt", "transformer"
        )
        assert isinstance(MODELS.create("gnmt"), Model)

    def test_datasets(self):
        assert DATASETS.available() == ("iwslt", "librispeech")
        corpus = DATASETS.create("iwslt", scale=0.01)
        # Tiny scales floor at a few batches' worth of samples.
        assert len(corpus) == 1330

    def test_dataset_scale_floor(self):
        assert len(DATASETS.create("iwslt", scale=0.0001)) == 256

    def test_batching(self):
        assert BATCHING.available() == (
            "pooled", "shuffled", "sortagrad", "sorted"
        )
        policy = BATCHING.create("pooled", 32, pad_multiple=2)
        assert isinstance(policy, PooledBucketing)
        assert policy.batch_size == 32
        assert policy.pad_multiple == 2

    def test_selectors(self):
        assert SELECTORS.available() == (
            "frequent", "kmeans", "median", "prior", "segmented",
            "segmented-drift", "seqpoint", "worst",
        )
        selector = SELECTORS.create("seqpoint", error_threshold_pct=0.5)
        assert isinstance(selector, SeqPointSelector)
        assert selector.error_threshold_pct == 0.5

    def test_kmeans_has_default_k(self):
        assert SELECTORS.create("kmeans").k == 5


class TestDefaults:
    def test_paper_pairings(self):
        assert default_dataset("gnmt") == "iwslt"
        assert default_batching("gnmt") == "pooled"
        assert default_dataset("ds2") == "librispeech"
        assert default_batching("ds2") == "sortagrad"

    def test_every_model_has_defaults(self):
        for network in MODELS.available():
            assert default_dataset(network) in DATASETS
            assert default_batching(network) in BATCHING

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigurationError, match="model"):
            default_dataset("bert")

    def test_pad_multiple(self):
        assert dataset_pad_multiple("iwslt") == 1
        assert dataset_pad_multiple("librispeech") == 4
        with pytest.raises(ConfigurationError):
            dataset_pad_multiple("wmt")

    def test_build_batching_honours_dataset_padding(self):
        policy = build_batching("sortagrad", 64, dataset="librispeech")
        assert isinstance(policy, SortaGradBatching)
        assert policy.pad_multiple == 4
        assert build_batching("pooled", 64, dataset="iwslt").pad_multiple == 1


class TestUnpairedModels:
    """Models registered downstream have no paper pairing: the defaults
    must fail with a clean ConfigurationError, not a bare KeyError."""

    def test_default_dataset_requires_pairing(self):
        @MODELS.register("_orphan")
        def _build():  # pragma: no cover - never invoked
            raise AssertionError

        try:
            with pytest.raises(ConfigurationError, match="no default dataset"):
                default_dataset("_orphan")
            with pytest.raises(
                ConfigurationError, match="no default batching"
            ):
                default_batching("_orphan")
        finally:
            MODELS._entries.pop("_orphan")

    def test_error_lists_available_components(self):
        @MODELS.register("_orphan2")
        def _build():  # pragma: no cover - never invoked
            raise AssertionError

        try:
            with pytest.raises(ConfigurationError, match="iwslt"):
                default_dataset("_orphan2")
        finally:
            MODELS._entries.pop("_orphan2")
