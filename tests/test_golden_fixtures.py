"""Golden-fixture regression tests for the trace serialization contract.

Small v1 (row-oriented) and v2 (columnar) trace-JSON artefacts are
committed under ``tests/fixtures/``.  These tests freeze three things:

* both schema versions keep loading (and v1 transparently columnarises
  to the same frame as v2);
* saving a loaded trace reproduces the artefact — the schema
  round-trips byte-for-byte at the JSON level;
* the numbers downstream of a load never move: selected seqpoints,
  weights, representative runtimes, and projected totals all match
  frozen expected values.

If an intentional schema change breaks these, regenerate the fixtures
*and* the frozen literals in the same commit — that is the contract
changing, and it must be visible in review.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.baselines import FrequentSelector
from repro.core.projection import project_logged_time
from repro.core.seqpoint import SeqPointSelector
from repro.errors import TraceError
from repro.train.frame import SCHEMA_V1, SCHEMA_V2, TraceFrame
from repro.train.trace import TrainingTrace

FIXTURES = Path(__file__).parent / "fixtures"
V1 = FIXTURES / "golden_trace_v1.json"
V2 = FIXTURES / "golden_trace_v2.json"

#: Frozen expectations (regenerate together with the fixtures).
EXPECTED_ITERATIONS = 20
EXPECTED_UNIQUE_SLS = [12, 24, 36, 48, 60]
EXPECTED_TOTAL_TIME = 3.6899  # frame-column sum
#: The per-SL group totals sum in a different order — one ulp apart.
EXPECTED_ACTUAL_TOTAL = 3.6898999999999997
EXPECTED_K = 5
EXPECTED_IDENT_ERROR = 0.010840402178919645
EXPECTED_PROJECTED = 3.6902999999999997
EXPECTED_SEQPOINTS = [
    # (seq_len, tgt_len, weight, representative time_s)
    (12, 16, 4.0, 0.0981),
    (24, 28, 5.0, 0.1461),
    (36, 40, 5.0, 0.1941),
    (48, 52, 3.0, 0.2422),
    (60, None, 3.0, 0.2901),
]
EXPECTED_FREQUENT = (24, 20.0, 2.922)


@pytest.fixture(params=[V1, V2], ids=["v1", "v2"])
def golden(request) -> TrainingTrace:
    return TrainingTrace.load(request.param)


class TestSchema:
    def test_fixture_files_carry_their_schema_stamps(self):
        assert json.loads(V1.read_text())["schema"] == SCHEMA_V1
        assert json.loads(V2.read_text())["schema"] == SCHEMA_V2

    def test_both_versions_load_to_the_same_frame(self):
        v1 = TraceFrame.load(V1)
        v2 = TraceFrame.load(V2)
        for column in ("index", "epoch", "seq_len", "tgt_len", "time_s"):
            assert np.array_equal(getattr(v1, column), getattr(v2, column))
        assert v1.batch_size == v2.batch_size
        assert v1.autotune_s == v2.autotune_s == 0.125
        assert v1.eval_s == v2.eval_s == 0.25
        assert [v1.profiles[i] for i in v1.profile_id] == [
            v2.profiles[i] for i in v2.profile_id
        ]

    def test_v2_round_trips_byte_identically(self, tmp_path):
        trace = TrainingTrace.load(V2)
        out = tmp_path / "resaved.json"
        trace.save(out, version=2)
        assert json.loads(out.read_text()) == json.loads(V2.read_text())

    def test_v1_round_trips_byte_identically(self, tmp_path):
        trace = TrainingTrace.load(V1)
        out = tmp_path / "resaved.json"
        trace.save(out, version=1)
        assert json.loads(out.read_text()) == json.loads(V1.read_text())

    def test_cross_version_save_converges(self, tmp_path):
        """v1 -> save v2 -> load equals a straight v2 load."""
        out = tmp_path / "upgraded.json"
        TrainingTrace.load(V1).save(out, version=2)
        assert json.loads(out.read_text()) == json.loads(V2.read_text())

    def test_unknown_schema_rejected(self, tmp_path):
        payload = json.loads(V2.read_text())
        payload["schema"] = "repro.training-trace.v99"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        with pytest.raises(TraceError, match="unknown trace schema"):
            TrainingTrace.load(bad)


class TestFrozenNumbers:
    def test_trace_shape(self, golden):
        assert len(golden) == EXPECTED_ITERATIONS
        assert golden.unique_seq_lens() == EXPECTED_UNIQUE_SLS
        assert golden.total_time_s == EXPECTED_TOTAL_TIME
        assert golden.batch_size == 64
        assert golden.model_name == "golden"

    def test_seqpoint_selection_frozen(self, golden):
        result = SeqPointSelector(max_unique=3).select(golden)
        assert result.k == EXPECTED_K
        assert result.identification_error_pct == EXPECTED_IDENT_ERROR
        assert result.projected_total_s == EXPECTED_PROJECTED
        assert result.actual_total_s == EXPECTED_ACTUAL_TOTAL
        assert [
            (p.seq_len, p.tgt_len, p.weight, p.record.time_s)
            for p in result.seqpoints
        ] == EXPECTED_SEQPOINTS

    def test_frequent_selection_frozen(self, golden):
        selection = FrequentSelector().select(golden)
        seq_len, weight, projected = EXPECTED_FREQUENT
        assert selection.seq_lens == (seq_len,)
        assert selection.points[0].weight == weight
        assert project_logged_time(selection) == projected

    def test_streaming_agrees_on_the_golden_trace(self, golden):
        """The streamed golden prefix equals the batch group-by."""
        from repro.core.sl_stats import SlStatistics
        from repro.stream import StreamingSlStatistics

        frame = golden.frame()
        stats = StreamingSlStatistics.for_frame(frame)
        for stop in range(1, len(frame) + 1):
            stats.absorb_frame(frame, stop - 1, stop)
        assert stats.statistics() == SlStatistics.from_trace(frame)
