"""Unit tests for the fixed-input CNN (the Fig 3 contrast)."""


from repro.hw.config import paper_config
from repro.models.cnn import build_cnn
from repro.models.spec import IterationInputs

CONFIG = paper_config(1)


class TestCnn:
    def test_not_sequence_dependent(self):
        assert not build_cnn().sequence_dependent

    def test_iteration_identical_across_seq_lens(self, device1):
        model = build_cnn()

        def iteration_time(seq_len):
            schedule = model.lower_iteration(IterationInputs(64, seq_len), CONFIG)
            return sum(device1.run(inv.work).time_s * c for inv, c in schedule)

        assert iteration_time(10) == iteration_time(500)

    def test_classifier_runs_once_per_image(self):
        model = build_cnn()
        schedule = model.lower_iteration(IterationInputs(32, 7), CONFIG)
        assert (1000, 32, 512) in schedule.gemm_shapes()

    def test_param_count_positive(self):
        assert build_cnn().param_count() > 1e6

    def test_forward_cheaper_than_iteration(self):
        model = build_cnn()
        inputs = IterationInputs(64, 1)
        assert (
            model.lower_forward(inputs, CONFIG).total_flops
            < model.lower_iteration(inputs, CONFIG).total_flops
        )
