"""Vectorized timing engine vs the scalar reference, bit for bit.

``time_work_batch`` must agree with looping ``time_work`` on every row
— totals, breakdown terms, bound tie-breaking, and counters — across
all five Table II configurations, including degenerate kernels (zero
FLOPs, zero traffic, zero working sets).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.hw.cache import TrafficProfile
from repro.hw.compute import ComputeProfile
from repro.hw.config import paper_config
from repro.hw.device import BatchMeasurement, GpuDevice, clear_measure_caches
from repro.hw.timing import (
    TimingBreakdown,
    WorkBatch,
    WorkProfile,
    time_work,
    time_work_batch,
)


def random_works(count: int, seed: int = 0) -> list[WorkProfile]:
    rng = random.Random(seed)
    works = []
    for _ in range(count):
        works.append(
            WorkProfile(
                compute=ComputeProfile(
                    flops=rng.choice([0.0, rng.uniform(1e3, 1e12)]),
                    work_items=rng.randint(1, 1 << 22),
                    issue_efficiency=rng.uniform(0.1, 1.0),
                    workgroup_size=rng.choice([64, 128, 256, 512]),
                ),
                traffic=TrafficProfile(
                    read_bytes=rng.choice([0.0, rng.uniform(1.0, 1e10)]),
                    write_bytes=rng.choice([0.0, rng.uniform(1.0, 1e10)]),
                    l1_reuse_fraction=rng.uniform(0.0, 1.0),
                    l1_working_set=rng.choice([0.0, rng.uniform(1.0, 1e7)]),
                    l2_reuse_fraction=rng.uniform(0.0, 0.5),
                    l2_working_set=rng.choice([0.0, rng.uniform(1.0, 1e9)]),
                ),
            )
        )
    return works


WORKS = random_works(120)
BATCH = WorkBatch.from_profiles(WORKS)


class TestBatchTimingEquivalence:
    @pytest.mark.parametrize("index", range(1, 6))
    def test_rows_bit_identical_to_scalar(self, index):
        config = paper_config(index)
        time_col, breakdown, counters = time_work_batch(BATCH, config)
        for row, work in enumerate(WORKS):
            time_ref, breakdown_ref, counters_ref = time_work(work, config)
            assert time_col[row] == time_ref
            assert breakdown.compute_s[row] == breakdown_ref.compute_s
            assert breakdown.bandwidth_s[row] == breakdown_ref.bandwidth_s
            assert breakdown.latency_s[row] == breakdown_ref.latency_s
            assert breakdown.total_s[row] == breakdown_ref.total_s
            assert counters.row(row) == counters_ref

    def test_row_materialisation_round_trips(self):
        config = paper_config(1)
        _, breakdown, _ = time_work_batch(BATCH, config)
        rebuilt = breakdown.row(3)
        assert isinstance(rebuilt, TimingBreakdown)
        _, reference, _ = time_work(WORKS[3], config)
        assert rebuilt == reference
        assert BATCH.row(3) == WORKS[3]

    def test_launch_s_matches_config(self):
        config = paper_config(2)
        _, breakdown, _ = time_work_batch(BATCH, config)
        assert breakdown.launch_s == config.kernel_launch_s


class TestBoundTieBreaking:
    @pytest.mark.parametrize("index", range(1, 6))
    def test_bound_labels_match_scalar(self, index):
        config = paper_config(index)
        _, breakdown, _ = time_work_batch(BATCH, config)
        labels = breakdown.bound
        for row, work in enumerate(WORKS):
            _, reference, _ = time_work(work, config)
            assert labels[row] == reference.bound

    def test_all_zero_terms_tie_to_compute(self):
        """The scalar ``bound`` breaks ties by dict order (compute
        first); ``np.argmax`` keeps the first maximum, matching it."""
        work = WorkProfile(
            compute=ComputeProfile(flops=0.0, work_items=64),
            traffic=TrafficProfile(read_bytes=0.0, write_bytes=0.0),
        )
        config = paper_config(1)
        _, scalar_breakdown, _ = time_work(work, config)
        assert scalar_breakdown.compute_s == scalar_breakdown.bandwidth_s
        assert scalar_breakdown.bound == "compute"
        batch = WorkBatch.from_profiles([work])
        _, batch_breakdown, _ = time_work_batch(batch, config)
        assert batch_breakdown.bound == ("compute",)

    def test_bandwidth_latency_tie_prefers_bandwidth(self):
        """A two-way tie between the later terms picks the earlier one."""
        breakdown = TimingBreakdown(
            launch_s=0.0,
            compute_s=0.0,
            bandwidth_s=2.0,
            latency_s=2.0,
            traffic=None,
        )
        assert breakdown.bound == "bandwidth"
        stacked = np.argmax(np.array([[0.0], [2.0], [2.0]]), axis=0)
        assert int(stacked[0]) == 1  # same first-max rule


class TestDeviceBatch:
    def test_run_batch_rows_match_run(self, device1):
        measurement = device1.run_batch(BATCH)
        assert isinstance(measurement, BatchMeasurement)
        assert len(measurement) == len(WORKS)
        for row, work in enumerate(WORKS):
            assert measurement.row(row) == device1.run(work)

    def test_run_batch_memoised_by_identity(self, device1):
        assert device1.run_batch(BATCH) is device1.run_batch(BATCH)

    def test_shared_across_equal_config_devices(self):
        clear_measure_caches()
        first = GpuDevice(paper_config(4))
        second = GpuDevice(paper_config(4))
        assert first.run_batch(BATCH) is second.run_batch(BATCH)
        clear_measure_caches()
