"""Unit tests for repro.util.stats."""

import math

import pytest

from repro.util.stats import (
    geomean,
    mean,
    median,
    percent_error,
    weighted_average,
    weighted_sum,
)


class TestWeightedSum:
    def test_equation_one(self):
        # Paper Equation 1: sum of weight * statistic.
        assert weighted_sum([1.0, 2.0, 3.0], [10, 20, 30]) == 10 + 40 + 90

    def test_empty_is_zero(self):
        assert weighted_sum([], []) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            weighted_sum([1.0], [1.0, 2.0])


class TestWeightedAverage:
    def test_normalises_by_total_weight(self):
        assert weighted_average([2.0, 4.0], [1.0, 3.0]) == pytest.approx(3.5)

    def test_uniform_weights_match_mean(self):
        values = [1.0, 5.0, 9.0]
        assert weighted_average(values, [2, 2, 2]) == pytest.approx(mean(values))

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError, match="positive"):
            weighted_average([1.0], [0.0])


class TestMeanMedian:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([5, 1, 3]) == 3

    def test_median_even_midpoint(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])


class TestGeomean:
    def test_matches_closed_form(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_zero_clamped_not_collapsing(self):
        # One perfect projection must not zero the summary.
        assert geomean([0.0, 1.0]) > 0.0

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            geomean([-1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_log_average_identity(self):
        values = [0.5, 2.0, 8.0]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geomean(values) == pytest.approx(expected)


class TestPercentError:
    def test_overestimate(self):
        assert percent_error(110.0, 100.0) == pytest.approx(10.0)

    def test_underestimate_is_positive(self):
        assert percent_error(90.0, 100.0) == pytest.approx(10.0)

    def test_exact_is_zero(self):
        assert percent_error(42.0, 42.0) == 0.0

    def test_zero_actual_raises(self):
        with pytest.raises(ValueError, match="zero"):
            percent_error(1.0, 0.0)
