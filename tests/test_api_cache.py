"""Unit tests for the content-addressed trace cache."""

from repro.api.cache import TraceCache

from tests.conftest import make_trace


def small_trace(time_s: float = 1.0) -> object:
    return make_trace([(10, time_s), (20, 2 * time_s)])


class TestKeying:
    def test_stable(self):
        fingerprint = {"network": "gnmt", "scale": 0.1}
        assert TraceCache.key_for(fingerprint) == TraceCache.key_for(fingerprint)

    def test_key_order_irrelevant(self):
        assert TraceCache.key_for({"a": 1, "b": 2}) == TraceCache.key_for(
            {"b": 2, "a": 1}
        )

    def test_value_sensitive(self):
        assert TraceCache.key_for({"a": 1}) != TraceCache.key_for({"a": 2})


class TestMemory:
    def test_miss_then_hit(self):
        cache = TraceCache()
        assert cache.get("k") is None
        assert cache.stats() == {"hits": 0, "misses": 1, "entries": 0}
        trace = small_trace()
        cache.put("k", trace)
        assert cache.get("k") is trace
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_get_or_compute_runs_once(self):
        cache = TraceCache()
        calls = []

        def compute():
            calls.append(1)
            return small_trace()

        first = cache.get_or_compute("k", compute)
        second = cache.get_or_compute("k", compute)
        assert first is second
        assert len(calls) == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_contains_and_len(self):
        cache = TraceCache()
        assert "k" not in cache
        cache.put("k", small_trace())
        assert "k" in cache
        assert len(cache) == 1

    def test_clear(self):
        cache = TraceCache()
        cache.put("k", small_trace())
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestDisk:
    def test_round_trip_across_instances(self, tmp_path):
        writer = TraceCache(tmp_path)
        trace = small_trace(0.5)
        writer.put("deadbeef", trace)
        assert (tmp_path / "deadbeef.json").exists()

        reader = TraceCache(tmp_path)
        restored = reader.get("deadbeef")
        assert restored is not None
        assert reader.stats()["hits"] == 1
        assert restored.total_time_s == trace.total_time_s
        assert [r.seq_len for r in restored.records] == [10, 20]

    def test_disk_hit_populates_memory(self, tmp_path):
        TraceCache(tmp_path).put("k", small_trace())
        cache = TraceCache(tmp_path)
        first = cache.get("k")
        second = cache.get("k")
        assert first is second  # second hit served from memory

    def test_contains_consults_disk(self, tmp_path):
        TraceCache(tmp_path).put("k", small_trace())
        assert "k" in TraceCache(tmp_path)

    def test_clear_keeps_disk(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("k", small_trace())
        cache.clear()
        assert cache.get("k") is not None
