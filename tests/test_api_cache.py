"""Unit tests for the content-addressed trace cache."""

import threading

import pytest

from repro.api.cache import TraceCache, trace_nbytes

from tests.conftest import make_trace


def small_trace(time_s: float = 1.0) -> object:
    return make_trace([(10, time_s), (20, 2 * time_s)])


class TestKeying:
    def test_stable(self):
        fingerprint = {"network": "gnmt", "scale": 0.1}
        assert TraceCache.key_for(fingerprint) == TraceCache.key_for(fingerprint)

    def test_key_order_irrelevant(self):
        assert TraceCache.key_for({"a": 1, "b": 2}) == TraceCache.key_for(
            {"b": 2, "a": 1}
        )

    def test_value_sensitive(self):
        assert TraceCache.key_for({"a": 1}) != TraceCache.key_for({"a": 2})


class TestMemory:
    def test_miss_then_hit(self):
        cache = TraceCache()
        assert cache.get("k") is None
        assert cache.stats() == {
            "hits": 0, "misses": 1, "entries": 0, "evictions": 0, "bytes": 0,
        }
        trace = small_trace()
        cache.put("k", trace)
        assert cache.get("k") is trace
        assert cache.stats() == {
            "hits": 1, "misses": 1, "entries": 1, "evictions": 0,
            "bytes": trace_nbytes(trace),
        }

    def test_get_or_compute_runs_once(self):
        cache = TraceCache()
        calls = []

        def compute():
            calls.append(1)
            return small_trace()

        first = cache.get_or_compute("k", compute)
        second = cache.get_or_compute("k", compute)
        assert first is second
        assert len(calls) == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_contains_and_len(self):
        cache = TraceCache()
        assert "k" not in cache
        cache.put("k", small_trace())
        assert "k" in cache
        assert len(cache) == 1

    def test_clear(self):
        cache = TraceCache()
        cache.put("k", small_trace())
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0, "misses": 0, "entries": 0, "evictions": 0, "bytes": 0,
        }


class TestDisk:
    def test_round_trip_across_instances(self, tmp_path):
        writer = TraceCache(tmp_path)
        trace = small_trace(0.5)
        writer.put("deadbeef", trace)
        assert (tmp_path / "deadbeef.npt").exists()

        reader = TraceCache(tmp_path)
        restored = reader.get("deadbeef")
        assert restored is not None
        assert reader.stats()["hits"] == 1
        assert restored.total_time_s == trace.total_time_s
        assert [r.seq_len for r in restored.records] == [10, 20]

    def test_disk_hit_populates_memory(self, tmp_path):
        TraceCache(tmp_path).put("k", small_trace())
        cache = TraceCache(tmp_path)
        first = cache.get("k")
        second = cache.get("k")
        assert first is second  # second hit served from memory

    def test_contains_consults_disk(self, tmp_path):
        TraceCache(tmp_path).put("k", small_trace())
        assert "k" in TraceCache(tmp_path)

    def test_clear_keeps_disk(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("k", small_trace())
        cache.clear()
        assert cache.get("k") is not None


class TestEviction:
    def test_rejects_nonpositive_budgets(self):
        with pytest.raises(ValueError):
            TraceCache(max_bytes=0)
        with pytest.raises(ValueError):
            TraceCache(max_entries=-1)

    def test_byte_accounting_tracks_entries(self):
        cache = TraceCache()
        one, two = small_trace(), small_trace(2.0)
        cache.put("a", one)
        cache.put("b", two)
        assert cache.bytes == trace_nbytes(one) + trace_nbytes(two)
        # Re-putting a key replaces its accounting, not double-counts it.
        cache.put("a", one)
        assert cache.bytes == trace_nbytes(one) + trace_nbytes(two)

    def test_lru_eviction_by_entries(self):
        cache = TraceCache(max_entries=2)
        cache.put("a", small_trace())
        cache.put("b", small_trace())
        cache.get("a")  # refresh a: b is now least recently used
        cache.put("c", small_trace())
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2

    def test_lru_eviction_by_bytes(self):
        entry = trace_nbytes(small_trace())
        cache = TraceCache(max_bytes=2 * entry)
        cache.put("a", small_trace())
        cache.put("b", small_trace())
        assert cache.stats()["evictions"] == 0
        cache.put("c", small_trace())
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["bytes"] <= 2 * entry
        assert "a" not in cache

    def test_oversized_entry_is_not_admitted(self):
        trace = small_trace()
        cache = TraceCache(max_bytes=max(1, trace_nbytes(trace) // 2))
        cache.put("huge", trace)
        assert len(cache) == 0
        assert cache.stats()["bytes"] == 0
        assert cache.stats()["evictions"] == 1

    def test_evicted_entry_reloads_from_disk(self, tmp_path):
        cache = TraceCache(tmp_path, max_entries=1)
        cache.put("a", small_trace())
        cache.put("b", small_trace())  # evicts a from memory only
        assert cache.stats()["evictions"] == 1
        assert cache.get("a") is not None  # disk hit re-admits
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 0


class TestBinaryStorage:
    """Disk tier observability and the mmap-backed artefact lifecycle."""

    def test_storage_stats_memory_only(self):
        cache = TraceCache()
        assert cache.storage_stats() == {
            "directory": None,
            "disk_entries": {"json": 0, "binary": 0},
            "cold_loads": {},
        }

    def test_cold_loads_counted_per_format(self, tmp_path):
        TraceCache(tmp_path).put("aa", small_trace())
        small_trace().save(tmp_path / "bb.json", version=2)  # legacy artefact
        cache = TraceCache(tmp_path)
        assert cache.get("aa") is not None
        assert cache.get("bb") is not None
        stats = cache.storage_stats()
        assert stats["directory"] == str(tmp_path)
        assert stats["disk_entries"] == {"json": 1, "binary": 1}
        for fmt in ("binary", "json"):
            entry = stats["cold_loads"][fmt]
            assert entry["count"] == 1
            assert entry["seconds"] >= 0.0
            assert entry["max_s"] >= entry["seconds"] / entry["count"]
        # Memory hits are not cold loads.
        cache.get("aa")
        assert cache.storage_stats()["cold_loads"]["binary"]["count"] == 1

    def test_disk_entry_reports_real_file_size(self, tmp_path):
        writer = TraceCache(tmp_path)
        writer.put("k", small_trace())
        reader = TraceCache(tmp_path)
        loaded = reader.get("k")
        assert trace_nbytes(loaded) == (tmp_path / "k.npt").stat().st_size
        assert reader.stats()["bytes"] == (tmp_path / "k.npt").stat().st_size

    def test_loaded_trace_outlives_eviction_and_unlink(self, tmp_path):
        TraceCache(tmp_path).put("a", small_trace())
        cache = TraceCache(tmp_path, max_entries=1)
        trace = cache.get("a")  # mmap-backed cold load
        assert trace.frame().storage is not None
        cache.put("b", small_trace())  # evicts a from memory
        assert cache.stats()["evictions"] == 1
        (tmp_path / "a.npt").unlink()  # POSIX: the mapping pins the pages
        assert [r.seq_len for r in trace.records] == [10, 20]
        assert trace.frame().time_s.sum() == 3.0

    def test_clear_resets_cold_load_counters(self, tmp_path):
        TraceCache(tmp_path).put("k", small_trace())
        cache = TraceCache(tmp_path)
        cache.get("k")
        assert cache.storage_stats()["cold_loads"]
        cache.clear()
        assert cache.storage_stats()["cold_loads"] == {}

    def test_fcntl_free_hosts_still_coordinate(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.util.filelock.fcntl", None)
        cache = TraceCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return small_trace()

        first = cache.get_or_compute("k", compute)
        assert (tmp_path / "k.npt").exists()
        second = TraceCache(tmp_path).get_or_compute("k", compute)
        assert len(calls) == 1  # second instance hit the artefact
        assert first.total_time_s == second.total_time_s


class TestCounterThreadSafety:
    def test_concurrent_hits_count_exactly(self):
        cache = TraceCache()
        cache.put("k", small_trace())
        rounds, threads = 200, 8

        def hammer():
            for _ in range(rounds):
                assert cache.get("k") is not None
                cache.get("missing")

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        stats = cache.stats()
        assert stats["hits"] == rounds * threads
        assert stats["misses"] == rounds * threads

    def test_concurrent_eviction_accounting_is_exact(self):
        entry = trace_nbytes(small_trace())
        cache = TraceCache(max_bytes=3 * entry)

        def churn(worker: int):
            for index in range(50):
                cache.put(f"w{worker}-{index}", small_trace())

        pool = [threading.Thread(target=churn, args=(w,)) for w in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        stats = cache.stats()
        # Whatever interleaving happened, the books must balance:
        # resident bytes equal the per-entry size times entries, and
        # every non-resident put was counted as an eviction.
        assert stats["bytes"] == entry * stats["entries"]
        assert stats["evictions"] == 200 - stats["entries"]
        assert stats["bytes"] <= 3 * entry
