"""Unit tests for the GNMT model builder."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.config import paper_config
from repro.models.gnmt import GnmtModel, build_gnmt
from repro.models.spec import IterationInputs

CONFIG = paper_config(1)


class TestStructure:
    def test_paper_layer_inventory(self):
        model = build_gnmt()
        # Eight encoder layers, the first bidirectional.
        assert len(model.encoder) == 8
        assert model.encoder[0].bidirectional
        assert all(not layer.bidirectional for layer in model.encoder[1:])
        # Eight decoder layers, attention, classifier.
        assert len(model.decoder) == 8
        assert model.classifier.out_features == 36549

    def test_paper_dimensions(self):
        model = build_gnmt()
        assert model.vocab == 36549
        assert model.hidden == 1024

    def test_param_count_magnitude(self):
        # GNMT at these dimensions carries a few hundred million params.
        assert 150e6 < build_gnmt().param_count() < 500e6

    def test_too_few_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            GnmtModel(encoder_layers=1)


class TestLowering:
    def test_schedule_scales_with_src(self):
        model = build_gnmt()
        short = model.lower_iteration(IterationInputs(64, 10, 11), CONFIG)
        long_ = model.lower_iteration(IterationInputs(64, 100, 110), CONFIG)
        assert long_.launch_count > 5 * short.launch_count
        assert long_.total_flops > 5 * short.total_flops

    def test_classifier_gemm_matches_table1(self):
        model = build_gnmt()
        schedule = model.lower_iteration(IterationInputs(64, 80, 94), CONFIG)
        assert (36549, 64 * 94, 1024) in schedule.gemm_shapes()

    def test_tgt_len_defaults_to_ratio(self):
        model = build_gnmt()
        assert model.target_steps(IterationInputs(64, 100)) == 110

    def test_explicit_tgt_len_respected(self):
        model = build_gnmt()
        assert model.target_steps(IterationInputs(64, 100, 57)) == 57

    def test_forward_subset_of_iteration(self):
        model = build_gnmt()
        inputs = IterationInputs(64, 20, 22)
        fwd = model.lower_forward(inputs, CONFIG)
        full = model.lower_iteration(inputs, CONFIG)
        assert full.launch_count > fwd.launch_count
        assert full.total_flops > 2 * fwd.total_flops

    def test_sequence_dependent(self):
        assert build_gnmt().sequence_dependent

    def test_optimizer_updates_present(self):
        model = build_gnmt()
        schedule = model.lower_iteration(IterationInputs(64, 10, 11), CONFIG)
        ops = {inv.op for inv, _ in schedule}
        assert "sgd_momentum" in ops

    def test_same_inputs_same_schedule(self, device1):
        # Key Observation 4: lowering is a pure function of the inputs.
        model = build_gnmt()
        inputs = IterationInputs(64, 33, 36)
        a = model.lower_iteration(inputs, CONFIG)
        b = model.lower_iteration(inputs, CONFIG)
        time_a = sum(device1.run(inv.work).time_s * c for inv, c in a)
        time_b = sum(device1.run(inv.work).time_s * c for inv, c in b)
        assert time_a == time_b
