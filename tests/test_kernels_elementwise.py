"""Unit tests for repro.kernels.elementwise."""

import pytest

from repro.kernels.elementwise import elementwise


class TestElementwise:
    def test_traffic_accounting(self):
        inv = elementwise("gate", 1000, reads_per_element=3, writes_per_element=2)
        assert inv.work.traffic.read_bytes == 1000 * 3 * 4
        assert inv.work.traffic.write_bytes == 1000 * 2 * 4

    def test_flops_accounting(self):
        inv = elementwise("gate", 1000, flops_per_element=30)
        assert inv.flops == 30_000

    def test_vectorised_when_inner_dim_aligned(self):
        inv = elementwise("relu", 1024, inner_dim=64)
        assert "_v4_" in inv.name

    def test_scalar_when_inner_dim_ragged(self):
        inv = elementwise("relu", 1024, inner_dim=87)
        assert "_v1_" in inv.name

    def test_inner_dim_defaults_to_elements(self):
        assert "_v4_" in elementwise("relu", 1024).name
        assert "_v1_" in elementwise("relu", 1023).name

    def test_grid_class_small(self):
        assert elementwise("op", 100).name.endswith("small")

    def test_grid_class_tiled(self):
        assert elementwise("op", 1 << 18).name.endswith("tiled")

    def test_grid_class_persistent(self):
        assert elementwise("op", 1 << 23).name.endswith("persistent")

    def test_zero_elements_rejected(self):
        with pytest.raises(ValueError):
            elementwise("op", 0)

    def test_default_group(self):
        assert elementwise("op", 10).group == "scalar-op"
