"""Unit tests for repro.kernels.conv."""

import pytest

from repro.errors import LoweringError
from repro.hw.config import paper_config
from repro.kernels.conv import Conv2dShape, conv2d_im2col


def ds2_conv1(width: int = 800) -> Conv2dShape:
    """DS2's first convolution at a padded input width."""
    return Conv2dShape(
        batch=64, c_in=1, c_out=32, in_h=201, in_w=width,
        kernel_h=41, kernel_w=11, stride_h=2, stride_w=2,
    )


class TestConv2dShape:
    def test_output_dims(self):
        shape = ds2_conv1()
        assert shape.out_h == (201 - 41) // 2 + 1
        assert shape.out_w == (800 - 11) // 2 + 1

    def test_patch_size(self):
        assert ds2_conv1().patch_size == 1 * 41 * 11

    def test_output_positions_scale_with_width(self):
        assert ds2_conv1(1600).output_positions > ds2_conv1(800).output_positions

    def test_kernel_larger_than_input_rejected(self):
        with pytest.raises(LoweringError):
            Conv2dShape(
                batch=1, c_in=1, c_out=1, in_h=4, in_w=4,
                kernel_h=8, kernel_w=1,
            )

    def test_non_positive_rejected(self):
        with pytest.raises(LoweringError):
            Conv2dShape(
                batch=0, c_in=1, c_out=1, in_h=4, in_w=4,
                kernel_h=1, kernel_w=1,
            )


class TestLowering:
    def test_two_kernels(self):
        kernels = conv2d_im2col(ds2_conv1(), paper_config(1))
        assert len(kernels) == 2
        assert kernels[0].op == "im2col"
        assert kernels[1].op == "gemm"

    def test_gemm_shape(self):
        shape = ds2_conv1()
        _, matmul = conv2d_im2col(shape, paper_config(1))
        assert matmul.shape == (32, shape.output_positions, shape.patch_size)

    def test_im2col_write_heavy(self):
        column, _ = conv2d_im2col(ds2_conv1(), paper_config(1))
        assert column.work.traffic.write_bytes > 0
        assert column.work.traffic.write_bytes == pytest.approx(
            ds2_conv1().output_positions * ds2_conv1().patch_size * 4
        )

    def test_group_assignment(self):
        column, matmul = conv2d_im2col(ds2_conv1(), paper_config(1), group="conv")
        assert matmul.group == "conv"
        assert column.group == "memops"

    def test_conv_flops_scale_with_width(self):
        _, small = conv2d_im2col(ds2_conv1(400), paper_config(1))
        _, large = conv2d_im2col(ds2_conv1(800), paper_config(1))
        assert large.flops > 1.8 * small.flops
