"""Property-based tests (hypothesis): streaming == batch, any chunking."""

from hypothesis import given, settings, strategies as st

from repro.core.seqpoint import SeqPointSelector
from repro.core.sl_stats import SlStatistics
from repro.stream import (
    SegmentedSelector,
    StreamingIdentifier,
    StreamingSlStatistics,
    replay,
    segment_frame,
    sl_mix_drift,
)
from tests.conftest import make_trace

sl_time_pairs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=300),
        st.floats(min_value=1e-4, max_value=50.0, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


@st.composite
def trace_and_chunking(draw):
    """A random trace plus a random partition of it into chunks."""
    pairs = draw(sl_time_pairs)
    cuts = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(pairs)),
            min_size=0,
            max_size=6,
        )
    )
    boundaries = sorted({0, *cuts, len(pairs)})
    return pairs, list(zip(boundaries, boundaries[1:]))


@given(trace_and_chunking())
@settings(max_examples=60)
def test_streaming_stats_bit_identical_under_any_chunking(case):
    pairs, chunks = case
    frame = make_trace(pairs).frame()
    stats = StreamingSlStatistics.for_frame(frame)
    for start, stop in chunks:
        stats.absorb_frame(frame, start, stop)
    assert stats.statistics() == SlStatistics.from_trace(frame)


@given(trace_and_chunking())
@settings(max_examples=40)
def test_streaming_prefixes_bit_identical_to_batch(case):
    pairs, chunks = case
    trace = make_trace(pairs)
    frame = trace.frame()
    stats = StreamingSlStatistics.for_frame(frame)
    for start, stop in chunks:
        stats.absorb_frame(frame, start, stop)
        if stop == 0:
            continue
        prefix = make_trace(pairs[:stop]).frame()
        assert stats.statistics() == SlStatistics.from_trace(prefix)


@given(sl_time_pairs, st.integers(min_value=1, max_value=17))
@settings(max_examples=40)
def test_exhausted_stream_reproduces_batch_selection(pairs, chunk_size):
    frame = make_trace(pairs).frame()
    batch = SeqPointSelector().select(frame)
    run = StreamingIdentifier(
        SeqPointSelector(),
        cadence=max(1, len(frame) // 2),
        patience=10_000,  # never converge: consume the whole stream
    ).run(replay(frame, chunk_size=chunk_size))
    assert run.iterations_consumed == len(frame)
    assert run.k == batch.k
    assert run.projected_prefix_total_s == batch.projected_total_s
    assert run.identification_error_pct == batch.identification_error_pct
    assert [
        (p.seq_len, p.weight, p.record.time_s) for p in run.selection.points
    ] == [
        (p.seq_len, p.weight, p.record.time_s) for p in batch.selection.points
    ]


@st.composite
def stationary_stream(draw):
    """N windows that are per-window permutations of one SL pool.

    Every cadence window then has an identical per-SL composition, so
    the changepoint score is exactly zero — the stream is stationary by
    construction at the granularity the segmenter looks at.
    """
    pool = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=200),
                st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
            ),
            min_size=2,
            max_size=6,
            unique_by=lambda pair: pair[0],
        )
    )
    windows = draw(st.integers(min_value=2, max_value=8))
    pairs = []
    for _ in range(windows):
        pairs.extend(draw(st.permutations(pool)))
    return pairs, len(pool)


@given(stationary_stream())
@settings(max_examples=40)
def test_segmented_is_the_base_selector_on_stationary_streams(case):
    pairs, cadence = case
    frame = make_trace(pairs).frame()
    assert len(segment_frame(frame, cadence=cadence)) == 1
    base = SeqPointSelector().select(frame)
    wrapped = SegmentedSelector(SeqPointSelector(), cadence=cadence).select(
        frame
    )
    assert wrapped.projected_total_s == base.projected_total_s
    assert wrapped.identification_error_pct == base.identification_error_pct
    assert [
        (p.seq_len, p.weight, p.record.time_s)
        for p in wrapped.selection.points
    ] == [
        (p.seq_len, p.weight, p.record.time_s) for p in base.selection.points
    ]


@given(sl_time_pairs, st.integers(min_value=1, max_value=8))
@settings(max_examples=30)
def test_segmented_runs_invariant_under_rechunking(pairs, cadence):
    """Checks, segments, and selections are a pure function of the
    stream contents — chunk granularity must never show through."""
    frame = make_trace(pairs).frame()
    runs = [
        StreamingIdentifier(
            SegmentedSelector(
                SeqPointSelector(), cadence=cadence, min_segment=cadence
            ),
            cadence=cadence,
            patience=10_000,  # consume everything: compare full histories
        ).run(replay(frame, chunk_size=chunk))
        for chunk in (1, 7, len(frame))
    ]
    baseline = runs[0]
    for run in runs[1:]:
        assert [c.to_dict() for c in run.checks] == [
            c.to_dict() for c in baseline.checks
        ]
        assert run.segments == baseline.segments
        assert [
            (p.seq_len, p.weight, p.record.time_s)
            for p in run.selection.points
        ] == [
            (p.seq_len, p.weight, p.record.time_s)
            for p in baseline.selection.points
        ]


sl_state = st.dictionaries(
    st.integers(min_value=1, max_value=30),
    st.tuples(
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
)


def _split(state):
    means = {sl: mean for sl, (_, mean) in state.items()}
    counts = {sl: count for sl, (count, _) in state.items()}
    return means, counts, sum(counts.values())


@given(sl_state)
@settings(max_examples=40)
def test_identical_state_never_drifts(state):
    means, counts, total = _split(state)
    assert not sl_mix_drift(means, counts, total, means, counts, total, 0.05)


@given(sl_state, st.integers(min_value=1, max_value=50))
@settings(max_examples=40)
def test_appearing_mass_is_drift(state, arrivals):
    """New SLs carrying all the arrivals since the last check must trip
    the guard however small the tolerance window."""
    means, counts, total = _split(state)
    new_sl = max(means) + 1
    now_means = {**means, new_sl: 1.0}
    now_counts = {**counts, new_sl: arrivals}
    assert sl_mix_drift(
        means, counts, total, now_means, now_counts, total + arrivals, 0.05
    )


@given(sl_state)
@settings(max_examples=40)
def test_vanishing_mass_is_drift(state):
    """An SL that held more than drift_rtol of the previous mass and
    disappears from the statistics must trip the guard."""
    means, counts, total = _split(state)
    heaviest = max(counts, key=counts.get)
    if counts[heaviest] <= 0.05 * total:
        counts[heaviest] = total  # force it over the tolerance
        total = sum(counts.values())
    now_means = {sl: mean for sl, mean in means.items() if sl != heaviest}
    now_counts = {sl: c for sl, c in counts.items() if sl != heaviest}
    assert sl_mix_drift(
        means, counts, total, now_means, now_counts, total, 0.05
    )


@given(sl_state, st.floats(min_value=1e-3, max_value=10.0, allow_nan=False))
@settings(max_examples=40)
def test_zero_previous_mean_treats_any_change_as_drift(state, new_mean):
    means, counts, total = _split(state)
    some_sl = next(iter(means))
    means[some_sl] = 0.0
    moved = {**means, some_sl: new_mean}
    assert sl_mix_drift(means, counts, total, moved, counts, total, 0.05)
    assert not sl_mix_drift(means, counts, total, means, counts, total, 0.05)


@given(sl_time_pairs)
@settings(max_examples=40)
def test_absorb_paths_agree(pairs):
    """Record-by-record and columnar absorption are interchangeable."""
    trace = make_trace(pairs)
    frame = trace.frame()
    by_record = StreamingSlStatistics.for_frame(frame)
    by_record.absorb_many(trace.records)
    by_frame = StreamingSlStatistics.for_frame(frame)
    by_frame.absorb_frame(frame, 0, len(frame))
    assert by_record.statistics() == by_frame.statistics()
    assert by_record.total_time_s == by_frame.total_time_s
    assert by_record.mean_times() == by_frame.mean_times()
