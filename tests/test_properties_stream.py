"""Property-based tests (hypothesis): streaming == batch, any chunking."""

from hypothesis import given, settings, strategies as st

from repro.core.seqpoint import SeqPointSelector
from repro.core.sl_stats import SlStatistics
from repro.stream import StreamingIdentifier, StreamingSlStatistics, replay
from tests.conftest import make_trace

sl_time_pairs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=300),
        st.floats(min_value=1e-4, max_value=50.0, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


@st.composite
def trace_and_chunking(draw):
    """A random trace plus a random partition of it into chunks."""
    pairs = draw(sl_time_pairs)
    cuts = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(pairs)),
            min_size=0,
            max_size=6,
        )
    )
    boundaries = sorted({0, *cuts, len(pairs)})
    return pairs, list(zip(boundaries, boundaries[1:]))


@given(trace_and_chunking())
@settings(max_examples=60)
def test_streaming_stats_bit_identical_under_any_chunking(case):
    pairs, chunks = case
    frame = make_trace(pairs).frame()
    stats = StreamingSlStatistics.for_frame(frame)
    for start, stop in chunks:
        stats.absorb_frame(frame, start, stop)
    assert stats.statistics() == SlStatistics.from_trace(frame)


@given(trace_and_chunking())
@settings(max_examples=40)
def test_streaming_prefixes_bit_identical_to_batch(case):
    pairs, chunks = case
    trace = make_trace(pairs)
    frame = trace.frame()
    stats = StreamingSlStatistics.for_frame(frame)
    for start, stop in chunks:
        stats.absorb_frame(frame, start, stop)
        if stop == 0:
            continue
        prefix = make_trace(pairs[:stop]).frame()
        assert stats.statistics() == SlStatistics.from_trace(prefix)


@given(sl_time_pairs, st.integers(min_value=1, max_value=17))
@settings(max_examples=40)
def test_exhausted_stream_reproduces_batch_selection(pairs, chunk_size):
    frame = make_trace(pairs).frame()
    batch = SeqPointSelector().select(frame)
    run = StreamingIdentifier(
        SeqPointSelector(),
        cadence=max(1, len(frame) // 2),
        patience=10_000,  # never converge: consume the whole stream
    ).run(replay(frame, chunk_size=chunk_size))
    assert run.iterations_consumed == len(frame)
    assert run.k == batch.k
    assert run.projected_prefix_total_s == batch.projected_total_s
    assert run.identification_error_pct == batch.identification_error_pct
    assert [
        (p.seq_len, p.weight, p.record.time_s) for p in run.selection.points
    ] == [
        (p.seq_len, p.weight, p.record.time_s) for p in batch.selection.points
    ]


@given(sl_time_pairs)
@settings(max_examples=40)
def test_absorb_paths_agree(pairs):
    """Record-by-record and columnar absorption are interchangeable."""
    trace = make_trace(pairs)
    frame = trace.frame()
    by_record = StreamingSlStatistics.for_frame(frame)
    by_record.absorb_many(trace.records)
    by_frame = StreamingSlStatistics.for_frame(frame)
    by_frame.absorb_frame(frame, 0, len(frame))
    assert by_record.statistics() == by_frame.statistics()
    assert by_record.total_time_s == by_frame.total_time_s
    assert by_record.mean_times() == by_frame.mean_times()
