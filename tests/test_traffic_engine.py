"""AnalysisEngine.run_traffic: the serving loop end to end."""

import json

import numpy as np
import pytest

from repro.api.engine import AnalysisEngine, TrafficAnalysisResult, default_engine
from repro.api.spec import AnalysisSpec
from repro.errors import ConfigurationError
from repro.traffic import TrafficSpec

_LATENCY_KEYS = {"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"}


def traffic_spec(**overrides):
    payload = {
        "analysis": {
            "network": "gnmt", "scale": 0.03, "batch_size": 16,
        },
        "requests": 192,
        "rate": 64.0,
        "cadence": 4,
        "patience": 2,
        "rtol": 0.05,
    }
    payload.update(overrides)
    return TrafficSpec.from_dict(payload)


@pytest.fixture(scope="module")
def engine():
    return AnalysisEngine()


@pytest.fixture(scope="module")
def stationary(engine):
    return engine.run_traffic(traffic_spec())


class TestTimedServing:
    def test_result_shape(self, stationary):
        assert isinstance(stationary, TrafficAnalysisResult)
        assert stationary.requests == 192
        assert stationary.batches >= 1
        assert len(stationary.points) >= 1
        assert stationary.identification_error_pct >= 0.0
        assert stationary.makespan_s >= stationary.actual_total_s > 0.0

    def test_latency_snapshots(self, stationary):
        for snapshot in (stationary.latency, stationary.queue_wait):
            assert set(snapshot) == _LATENCY_KEYS
            assert snapshot["count"] == 192
        # End-to-end latency includes device time, so it dominates wait.
        assert stationary.latency["mean_ms"] > stationary.queue_wait["mean_ms"]

    def test_streaming_watches_the_live_stream(self, stationary):
        assert stationary.iterations_consumed <= stationary.batches
        assert stationary.streaming_projection_error_pct >= 0.0
        # The union drift guard counts appearing SLs as drift, and a
        # 15-batch stream is still all SL-coverage growth — every check
        # after the first sees batches whose padded SL is new, so the
        # stability window keeps resetting instead of freezing an
        # early selection.
        assert stationary.drift_resets == 3

    def test_deterministic(self, engine, stationary):
        again = engine.run_traffic(traffic_spec())
        assert again.to_dict() == stationary.to_dict()

    def test_to_dict_json_serialisable(self, stationary):
        payload = json.loads(json.dumps(stationary.to_dict()))
        assert payload["spec"]["analysis"]["network"] == "gnmt"
        assert payload["requests"] == 192

    def test_spec_type_checked(self, engine):
        with pytest.raises(ConfigurationError, match="TrafficSpec"):
            engine.run_traffic(AnalysisSpec(network="gnmt", scale=0.02))


class TestDriftingMix:
    def test_disjoint_phases_fire_the_drift_guard(self, engine):
        result = engine.run_traffic(
            traffic_spec(
                requests=384,
                arrival="bursty",
                phases=[
                    {"fraction": 0.5, "quantile_hi": 0.55},
                    {"fraction": 0.5, "quantile_lo": 0.45},
                ],
                drift_rtol=0.01,
            )
        )
        assert result.drift_resets >= 1
        assert any(check.drift_reset for check in result.checks)


class TestProjections:
    def test_offline_projection_onto_other_configs(self, engine):
        result = engine.run_traffic(
            traffic_spec(
                arrival="offline", requests=128, targets=[1, 3],
                pad_multiple=1,
            )
        )
        by_config = {p.config: p for p in result.projections}
        assert set(by_config) == {1, 3}
        # Projecting onto the identification config itself is exact.
        assert by_config[1].error_pct == pytest.approx(0.0, abs=1e-9)
        assert by_config[3].actual_serving_s > 0.0
        assert by_config[3].error_pct < 5.0


class TestOfflineEquivalence:
    def test_inference_outcome_bit_identical_to_inline_path(self):
        """experiments/inference.py rerouted without changing a digit."""
        from repro.core.projection import project_total
        from repro.core.seqpoint import SeqPointSelector
        from repro.data.batching import PooledBucketing
        from repro.experiments.inference import inference_outcome
        from repro.experiments.setups import scenario
        from repro.hw.config import paper_config
        from repro.hw.device import GpuDevice
        from repro.train.inference import InferenceRunSimulator

        scale = 0.05
        for network in ("gnmt", "ds2"):
            setup = scenario(network, scale)

            def simulator(config_index):
                return InferenceRunSimulator(
                    setup.model,
                    setup.eval_data,
                    PooledBucketing(8),
                    GpuDevice(paper_config(config_index)),
                )

            base = simulator(1)
            trace = base.run_pass()
            selected = SeqPointSelector().select(trace)
            other = simulator(3)
            actual = other.run_pass().total_time_s
            projected = project_total(
                selected.selection,
                lambda point: other.measure_seq_len(
                    point.seq_len, point.tgt_len
                ),
            )
            legacy = {
                "requests": float(len(trace)),
                "seqpoints": float(len(selected.selection)),
                "ident_error_pct": selected.identification_error_pct,
                "config3_error_pct": abs(projected - actual) / actual * 100.0,
            }
            assert inference_outcome(network, scale) == legacy


class TestTrafficPlanStore:
    def test_plan_store_populates_and_detaches(self, tmp_path, engine):
        from repro.models.plan import PLAN_CACHE

        store_dir = tmp_path / "plans"
        PLAN_CACHE.clear()  # force memory misses so the store is consulted
        cold = engine.run_traffic(
            traffic_spec(requests=64), plan_store_dir=str(store_dir)
        )
        assert list(store_dir.glob("*.npt"))  # lowerings persisted
        # The run-scoped store did not leak into the global cache.
        assert PLAN_CACHE.attach_store(None) is None

        artefacts = {
            path.name: path.stat().st_mtime_ns
            for path in store_dir.glob("*.npt")
        }
        PLAN_CACHE.clear()  # warm run must go back through the store
        warm = engine.run_traffic(
            traffic_spec(requests=64), plan_store_dir=str(store_dir)
        )
        assert warm.to_dict() == cold.to_dict()
        # Warm run loaded every plan: no artefact was rewritten.
        assert {
            path.name: path.stat().st_mtime_ns
            for path in store_dir.glob("*.npt")
        } == artefacts

    def test_default_run_attaches_no_store(self, engine):
        from repro.models.plan import PLAN_CACHE

        engine.run_traffic(traffic_spec(requests=64))
        assert PLAN_CACHE.attach_store(None) is None


class TestTrafficFeed:
    def test_chunks_group_by_formation_instant(self, engine):
        from repro.api.registry import BATCHING
        from repro.hw.config import paper_config
        from repro.hw.device import GpuDevice
        from repro.traffic import TrafficFeed, TrafficSimulator, form_batches
        from repro.traffic import sample_requests

        spec = traffic_spec()
        resolved = engine.resolve(spec.analysis)
        requests = sample_requests(
            resolved.train_data, spec.phases, spec.requests,
            spec.analysis.seed,
        )
        arrival_s = spec.build_arrivals().times(
            len(requests), spec.analysis.seed
        )
        batches = form_batches(
            arrival_s, requests.seq_len, requests.tgt_len,
            resolved.batching, spec.max_wait_s,
        )
        simulator = TrafficSimulator(
            resolved.model, spec.analysis.dataset, resolved.batching,
            GpuDevice(paper_config(spec.analysis.config)),
        )
        served = simulator.serve(requests, arrival_s, batches)
        feed = TrafficFeed(served)
        slices = list(feed)
        assert sum(s.stop - s.start for s in slices) == len(served.frame)
        form_times = np.asarray([b.form_time_s for b in batches])
        for chunk in slices:
            window = form_times[chunk.start:chunk.stop]
            assert np.all(window == window[0])
        boundaries = [chunk.start for chunk in slices][1:]
        for boundary in boundaries:
            assert form_times[boundary - 1] != form_times[boundary]
