"""Unit tests for the SequentialModel container."""

import pytest

from repro.errors import LoweringError
from repro.hw.config import paper_config
from repro.models.layers.conv2d import Conv2dLayer
from repro.models.layers.dense import DenseLayer
from repro.models.layers.losses import SoftmaxCrossEntropyLayer
from repro.models.sequential import SequentialModel
from repro.models.spec import IterationInputs

CONFIG = paper_config(1)


def strided_model() -> SequentialModel:
    conv = Conv2dLayer(
        "conv", c_in=1, c_out=4, height=8,
        kernel_h=3, kernel_w=3, stride_h=1, stride_w=2, pad_h=1, pad_w=1,
    )
    dense = DenseLayer("fc", 4 * conv.out_height, 10)
    return SequentialModel(
        "strided", [conv, dense], SoftmaxCrossEntropyLayer("ce", 10)
    )


class TestStepTracking:
    def test_final_steps_follow_strides(self):
        model = strided_model()
        # stride 2 with same padding: 100 -> 50.
        assert model.final_steps(IterationInputs(2, 100)) == 50

    def test_backward_sees_forward_steps(self):
        # The plan pairs each layer with its *input* steps.
        model = strided_model()
        plan = model._forward_plan(IterationInputs(2, 100))
        assert [steps for _, steps in plan] == [100, 50]

    def test_param_count_sums_layers_and_loss(self):
        model = strided_model()
        expected = sum(l.param_count() for l in model.layers)
        assert model.param_count() == expected  # CE loss has no params

    def test_empty_layer_list_rejected(self):
        with pytest.raises(LoweringError, match="at least one"):
            SequentialModel("empty", [], None)


class TestLowering:
    def test_iteration_includes_loss_and_optimizer(self):
        model = strided_model()
        ops = {
            inv.op
            for inv, _ in model.lower_iteration(IterationInputs(2, 20), CONFIG)
        }
        assert "softmax_grad" in ops       # loss backward
        assert "sgd_momentum" in ops       # optimizer updates

    def test_forward_excludes_backward(self):
        model = strided_model()
        ops = {
            inv.op
            for inv, _ in model.lower_forward(IterationInputs(2, 20), CONFIG)
        }
        assert "softmax_grad" not in ops
        assert "sgd_momentum" not in ops

    def test_lossless_model_supported(self):
        model = SequentialModel("headless", [DenseLayer("fc", 8, 4)], None)
        schedule = model.lower_iteration(IterationInputs(2, 3), CONFIG)
        assert schedule.launch_count > 0
