"""Unit tests for the inference simulator (paper §VII-E)."""

import pytest

from repro.core.seqpoint import SeqPointSelector
from repro.data.batching import PooledBucketing, ShuffledBatching
from repro.data.iwslt import build_iwslt
from repro.errors import ConfigurationError
from repro.models.gnmt import build_gnmt
from repro.train.inference import InferenceRunSimulator


@pytest.fixture(scope="module")
def gnmt_serving(devices):
    corpus = build_iwslt(sentences=800)
    return InferenceRunSimulator(
        build_gnmt(), corpus, PooledBucketing(8), devices[1]
    )


class TestInferenceRunSimulator:
    def test_full_batches_preferred(self, gnmt_serving):
        trace = gnmt_serving.run_pass()
        assert len(trace) == 800 // 8

    def test_trace_marked_as_inference(self, gnmt_serving):
        assert gnmt_serving.run_pass().model_name == "gnmt-inference"

    def test_forward_only_cheaper_than_training(self, devices):
        from repro.train.runner import TrainingRunSimulator

        corpus = build_iwslt(sentences=512)
        train_trace = TrainingRunSimulator(
            build_gnmt(), corpus, ShuffledBatching(8), devices[1]
        ).run_epoch(include_eval=False)
        infer_trace = InferenceRunSimulator(
            build_gnmt(), corpus, ShuffledBatching(8), devices[1]
        ).run_pass()
        assert infer_trace.total_time_s < train_trace.total_time_s / 2

    def test_seqpoint_pipeline_applies(self, gnmt_serving):
        trace = gnmt_serving.run_pass()
        result = SeqPointSelector().select(trace)
        assert len(result.selection) <= len(trace.unique_seq_lens())
        assert result.selection.total_weight == len(trace)

    def test_ragged_fallback_for_tiny_request_sets(self, devices):
        corpus = build_iwslt(sentences=260)
        sim = InferenceRunSimulator(
            build_gnmt(), corpus, PooledBucketing(512), devices[1]
        )
        trace = sim.run_pass()
        assert len(trace) == 1  # one ragged batch kept

    def test_measure_seq_len_forward_latency(self, gnmt_serving):
        assert gnmt_serving.measure_seq_len(30, 33) > 0

    def test_negative_noise_rejected(self, devices):
        corpus = build_iwslt(sentences=256)
        with pytest.raises(ConfigurationError):
            InferenceRunSimulator(
                build_gnmt(), corpus, PooledBucketing(8), devices[1],
                noise_sigma=-0.5,
            )
