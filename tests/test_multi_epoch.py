"""Multi-epoch training-run tests (paper Fig 2 / Key Observation 4).

Epochs are "largely homogeneous": the dataset is constant, so while
iteration *order* varies per epoch, the totals and the identified
SeqPoints barely do — the structural reason one epoch suffices for
identification.
"""

import pytest

from repro.core.seqpoint import SeqPointSelector
from repro.data.batching import ShuffledBatching, SortaGradBatching
from repro.data.librispeech import build_librispeech
from repro.errors import ConfigurationError
from repro.models.ds2 import build_ds2
from repro.train.runner import TrainingRunSimulator


@pytest.fixture(scope="module")
def ds2_run(devices):
    corpus = build_librispeech(utterances=1920)
    sim = TrainingRunSimulator(
        build_ds2(), corpus, SortaGradBatching(64, pad_multiple=4), devices[1]
    )
    return sim, sim.run_training(epochs=3, include_eval=False)


class TestSortaGrad:
    def test_first_epoch_sorted(self, ds2_run):
        _, traces = ds2_run
        lengths = [r.seq_len for r in traces[0].records]
        assert lengths == sorted(lengths)

    def test_later_epochs_lose_short_iterations(self, ds2_run):
        # Shuffled batches pad to the batch maximum, so almost every
        # iteration runs near the corpus maximum — short iterations
        # exist only in the sorted epoch.  (This padding waste is the
        # reason SortaGrad/bucketing pipelines exist.)
        _, traces = ds2_run
        sorted_min = min(r.seq_len for r in traces[0].records)
        shuffled_min = min(r.seq_len for r in traces[1].records)
        assert shuffled_min > 2 * sorted_min


class TestEpochHomogeneity:
    def test_shuffled_epochs_mutually_homogeneous(self, ds2_run):
        # Epochs under the *same* policy are homogeneous (Key obs. 4).
        _, traces = ds2_run
        assert traces[1].total_time_s == pytest.approx(
            traces[2].total_time_s, rel=0.05
        )

    def test_sorted_epoch_cheaper_than_shuffled(self, ds2_run):
        # The sorted epoch pads far less, so it runs faster — epoch
        # composition is policy-dependent even though the dataset is
        # constant.
        _, traces = ds2_run
        assert traces[0].total_time_s < traces[1].total_time_s

    def test_autotune_only_in_first_epochs(self, ds2_run):
        _, traces = ds2_run
        # Epoch 0 (sorted) exercises nearly every shape; later epochs
        # add at most a few new batch maxima.
        assert traces[0].autotune_s > 10 * max(
            traces[1].autotune_s, traces[2].autotune_s, 1e-12
        )

    def test_seqpoints_transfer_between_like_epochs(self, ds2_run):
        # Identify on shuffled epoch 1, project shuffled epoch 2: the
        # compositions match, so the projection lands within percents.
        _, traces = ds2_run
        result = SeqPointSelector().select(traces[1])
        projected = sum(p.weight * p.record.time_s for p in result.seqpoints)
        error = abs(projected - traces[2].total_time_s) / traces[2].total_time_s
        assert error < 0.05


class TestRunTraining:
    def test_epoch_count(self, ds2_run):
        _, traces = ds2_run
        assert len(traces) == 3
        assert [t.records[0].epoch for t in traces] == [0, 1, 2]

    def test_invalid_epochs_rejected(self, ds2_run, devices):
        sim, _ = ds2_run
        with pytest.raises(ConfigurationError):
            sim.run_training(epochs=0)


class TestShuffledHomogeneity:
    def test_gnmt_epochs_similar_under_shuffle(self, devices):
        from repro.data.iwslt import build_iwslt
        from repro.models.gnmt import build_gnmt

        corpus = build_iwslt(sentences=1920)
        sim = TrainingRunSimulator(
            build_gnmt(), corpus, ShuffledBatching(64), devices[1]
        )
        traces = sim.run_training(epochs=2, include_eval=False)
        assert traces[0].total_time_s == pytest.approx(
            traces[1].total_time_s, rel=0.10
        )
