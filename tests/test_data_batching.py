"""Unit tests for repro.data.batching."""

import pytest

from repro.data.batching import PooledBucketing, ShuffledBatching, SortedBatching
from repro.data.dataset import Sample, SequenceDataset
from repro.errors import ConfigurationError


def corpus(n: int = 1000, with_targets: bool = False) -> SequenceDataset:
    samples = tuple(
        Sample(length=(i % 97) + 1, tgt_length=((i % 97) + 2) if with_targets else None)
        for i in range(n)
    )
    return SequenceDataset("toy", samples, vocab=50)


class TestCommonBehaviour:
    def test_batch_count_drops_ragged_tail(self):
        plan = ShuffledBatching(64).plan_epoch(corpus(1000))
        assert len(plan) == 1000 // 64

    def test_seq_len_is_batch_max(self):
        data = corpus(128)
        plan = SortedBatching(64).plan_epoch(data)
        sorted_lengths = sorted(data.lengths)
        assert plan[0].seq_len == max(sorted_lengths[:64])
        assert plan[1].seq_len == max(sorted_lengths[64:128])

    def test_targets_padded_to_batch_max(self):
        plan = SortedBatching(64).plan_epoch(corpus(256, with_targets=True))
        for inputs in plan:
            assert inputs.tgt_len is not None
            assert inputs.tgt_len >= 2

    def test_pad_multiple_rounds_up(self):
        plan = SortedBatching(64, pad_multiple=8).plan_epoch(corpus(512))
        assert all(inputs.seq_len % 8 == 0 for inputs in plan)

    def test_pad_multiple_reduces_unique_sls(self):
        data = corpus(2000)
        raw = {i.seq_len for i in SortedBatching(16).plan_epoch(data)}
        padded = {
            i.seq_len for i in SortedBatching(16, pad_multiple=8).plan_epoch(data)
        }
        assert len(padded) <= len(raw)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ShuffledBatching(0)

    def test_invalid_pad_multiple_rejected(self):
        with pytest.raises(ConfigurationError):
            ShuffledBatching(8, pad_multiple=0)


class TestSortedBatching:
    def test_monotonic_seq_lens(self):
        plan = SortedBatching(32).plan_epoch(corpus(640))
        lengths = [inputs.seq_len for inputs in plan]
        assert lengths == sorted(lengths)

    def test_epoch_invariant(self):
        # SortaGrad sorting ignores the epoch/seed.
        policy = SortedBatching(32)
        assert (
            [i.seq_len for i in policy.plan_epoch(corpus(640), epoch=0)]
            == [i.seq_len for i in policy.plan_epoch(corpus(640), epoch=3)]
        )


class TestShuffledBatching:
    def test_reshuffles_per_epoch(self):
        policy = ShuffledBatching(32)
        first = [i.seq_len for i in policy.plan_epoch(corpus(640), epoch=0)]
        second = [i.seq_len for i in policy.plan_epoch(corpus(640), epoch=1)]
        assert first != second

    def test_deterministic_per_seed(self):
        policy = ShuffledBatching(32)
        a = [i.seq_len for i in policy.plan_epoch(corpus(640), seed=4)]
        b = [i.seq_len for i in policy.plan_epoch(corpus(640), seed=4)]
        assert a == b


class TestPooledBucketing:
    def test_reduces_padding_waste(self):
        data = corpus(4096)
        pooled = PooledBucketing(32, pool_factor=16).plan_epoch(data)
        shuffled = ShuffledBatching(32).plan_epoch(data)
        pooled_padding = sum(i.seq_len for i in pooled)
        shuffled_padding = sum(i.seq_len for i in shuffled)
        assert pooled_padding < shuffled_padding

    def test_contiguous_windows_not_diverse(self):
        # The §VI-E property: a contiguous window of iterations covers a
        # narrow slice of the SL range.
        data = corpus(4096)
        plan = PooledBucketing(32, pool_factor=16).plan_epoch(data)
        window = [i.seq_len for i in plan[4:10]]
        full = [i.seq_len for i in plan]
        window_span = max(window) - min(window)
        full_span = max(full) - min(full)
        assert window_span < full_span / 2

    def test_invalid_pool_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            PooledBucketing(8, pool_factor=0)

    def test_consumes_every_sample_once(self):
        data = corpus(512)
        policy = PooledBucketing(8, pool_factor=4)
        order = policy._sample_order(data, epoch=0, seed=0)
        assert sorted(order.tolist()) == list(range(512))
