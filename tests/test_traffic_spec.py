"""TrafficSpec: validation, JSON round-trip, builders."""

import json

import pytest

from repro.api.spec import AnalysisSpec, ProjectionSpec
from repro.errors import ConfigurationError
from repro.traffic import (
    BurstyArrivals,
    OfflineArrivals,
    TrafficPhase,
    TrafficSpec,
)
from repro.traffic.spec import TrafficSpec as SpecFromModule


def tiny(**overrides):
    payload = {"analysis": {"network": "gnmt", "scale": 0.02}}
    payload.update(overrides)
    return TrafficSpec.from_dict(payload)


class TestConstruction:
    def test_module_and_package_export_agree(self):
        assert SpecFromModule is TrafficSpec

    def test_analysis_coerced_from_mapping(self):
        spec = tiny()
        assert isinstance(spec.analysis, AnalysisSpec)
        assert spec.analysis.network == "gnmt"

    def test_defaults(self):
        spec = tiny()
        assert spec.arrival == "poisson"
        assert spec.requests == 1024
        assert spec.phases == (TrafficPhase(1.0),)
        assert spec.targets is None

    def test_analysis_required(self):
        with pytest.raises(ConfigurationError, match="'analysis'"):
            TrafficSpec.from_dict({"arrival": "poisson"})

    def test_analysis_must_be_spec_shaped(self):
        with pytest.raises(ConfigurationError, match="analysis must be"):
            TrafficSpec(analysis="gnmt")

    def test_unknown_arrival(self):
        with pytest.raises(ConfigurationError, match="unknown arrival"):
            tiny(arrival="fractal")

    def test_requests_validated(self):
        with pytest.raises(ConfigurationError, match="requests must be"):
            tiny(requests="many")
        with pytest.raises(ConfigurationError, match="requests must be"):
            tiny(requests=0)

    def test_max_wait_validated(self):
        with pytest.raises(ConfigurationError, match="max_wait_s"):
            tiny(max_wait_s=0)

    def test_phases_coerced_and_validated(self):
        spec = tiny(phases=[{"fraction": 0.5}, {"fraction": 0.5}])
        assert spec.phases == (TrafficPhase(0.5), TrafficPhase(0.5))
        with pytest.raises(ConfigurationError, match="phases"):
            tiny(phases="half")
        with pytest.raises(ConfigurationError, match="phases"):
            tiny(phases=[])

    def test_pad_multiple_validated(self):
        assert tiny(pad_multiple=4).pad_multiple == 4
        with pytest.raises(ConfigurationError, match="pad_multiple"):
            tiny(pad_multiple=0)
        with pytest.raises(ConfigurationError, match="pad_multiple"):
            tiny(pad_multiple=True)

    def test_targets_validated_like_projection_spec(self):
        assert tiny(targets=[1, 3]).targets == (1, 3)
        with pytest.raises(ConfigurationError):
            tiny(targets=[42])

    def test_streaming_knobs_validated(self):
        with pytest.raises(ConfigurationError, match="cadence"):
            tiny(cadence=0)
        with pytest.raises(ConfigurationError, match="patience"):
            tiny(patience=0)
        with pytest.raises(ConfigurationError, match="rtol"):
            tiny(rtol=0.0)
        with pytest.raises(ConfigurationError, match="drift_rtol"):
            tiny(drift_rtol=0.0)
        with pytest.raises(ConfigurationError, match="sl_rtol"):
            tiny(sl_rtol=-0.1)
        with pytest.raises(ConfigurationError, match="min_iterations"):
            tiny(min_iterations=-1)

    def test_bad_arrival_shape_fails_at_construction(self):
        # build_arrivals() runs in __post_init__, so impossible burst
        # shapes surface before any workload is sampled.
        with pytest.raises(ConfigurationError, match="off-phase"):
            tiny(arrival="bursty", burst_factor=8.0, on_fraction=0.25)

    def test_unknown_fields_one_line(self):
        with pytest.raises(ConfigurationError, match="unknown TrafficSpec"):
            tiny(qps=3)


class TestJsonRoundTrip:
    def test_round_trip_bit_identity(self):
        spec = tiny(
            arrival="bursty",
            rate=100.0,
            requests=64,
            phases=[{"fraction": 0.5, "quantile_hi": 0.6},
                    {"fraction": 0.5, "quantile_lo": 0.4}],
            targets=[3],
            pad_multiple=2,
        )
        text = spec.to_json()
        assert TrafficSpec.from_json(text) == spec
        assert json.loads(text)["v"] == TrafficSpec.SPEC_VERSION
        # The envelope-free wire form is stable too.
        assert TrafficSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_wrong_version_rejected(self):
        payload = tiny().to_dict()
        payload["v"] = 99
        with pytest.raises(ConfigurationError, match="version 99"):
            TrafficSpec.from_dict(payload)


class TestBuilders:
    def test_build_arrivals_matches_kind(self):
        assert isinstance(tiny(arrival="offline").build_arrivals(),
                          OfflineArrivals)
        assert isinstance(tiny(arrival="bursty").build_arrivals(),
                          BurstyArrivals)

    def test_build_identifier_carries_the_knobs(self):
        identifier = tiny(cadence=5, patience=2, rtol=0.25).build_identifier()
        assert identifier.cadence == 5
        assert identifier.patience == 2
        assert identifier.rtol == 0.25

    def test_projection(self):
        assert tiny().projection() is None
        assert tiny(targets=[1, 3]).projection() == ProjectionSpec((1, 3))
