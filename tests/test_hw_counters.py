"""Unit tests for repro.hw.counters."""

import pytest

from repro.hw.counters import CounterSet


class TestCounterSet:
    def test_addition_fieldwise(self):
        a = CounterSet(valu_insts=1, dram_read_bytes=2)
        b = CounterSet(valu_insts=10, dram_write_bytes=5)
        total = a + b
        assert total.valu_insts == 11
        assert total.dram_read_bytes == 2
        assert total.dram_write_bytes == 5

    def test_scaled(self):
        scaled = CounterSet(valu_insts=3, busy_cycles=7).scaled(2.0)
        assert scaled.valu_insts == 6
        assert scaled.busy_cycles == 14

    def test_zero_identity(self):
        a = CounterSet(valu_insts=5, l2_read_bytes=9)
        assert a + CounterSet.zero() == a

    def test_as_dict_covers_all_fields(self):
        d = CounterSet().as_dict()
        assert set(d) == {
            "valu_insts", "dram_read_bytes", "dram_write_bytes",
            "l2_read_bytes", "write_stall_cycles", "busy_cycles",
        }

    def test_write_stall_fraction(self):
        counters = CounterSet(write_stall_cycles=25, busy_cycles=100)
        assert counters.write_stall_fraction == pytest.approx(0.25)

    def test_write_stall_fraction_no_cycles(self):
        assert CounterSet().write_stall_fraction == 0.0

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            CounterSet() + 5
