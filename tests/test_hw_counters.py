"""Unit tests for repro.hw.counters."""

import numpy as np
import pytest

from repro.hw.counters import CounterColumns, CounterSet


def _counter(seed: int) -> CounterSet:
    """Counters whose values are exact in float64 (powers of two), so
    the algebraic identities below hold bitwise, not just approximately."""
    base = float(1 << (seed % 20))
    return CounterSet(
        valu_insts=base,
        dram_read_bytes=base * 2.0,
        dram_write_bytes=base * 0.5,
        l2_read_bytes=base * 4.0,
        write_stall_cycles=base * 0.25,
        busy_cycles=base * 8.0,
    )


def _columns(counters: list[CounterSet]) -> CounterColumns:
    return CounterColumns(
        **{
            name: np.array([getattr(c, name) for c in counters])
            for name in CounterSet().as_dict()
        }
    )


class TestCounterSet:
    def test_addition_fieldwise(self):
        a = CounterSet(valu_insts=1, dram_read_bytes=2)
        b = CounterSet(valu_insts=10, dram_write_bytes=5)
        total = a + b
        assert total.valu_insts == 11
        assert total.dram_read_bytes == 2
        assert total.dram_write_bytes == 5

    def test_scaled(self):
        scaled = CounterSet(valu_insts=3, busy_cycles=7).scaled(2.0)
        assert scaled.valu_insts == 6
        assert scaled.busy_cycles == 14

    def test_zero_identity(self):
        a = CounterSet(valu_insts=5, l2_read_bytes=9)
        assert a + CounterSet.zero() == a

    def test_as_dict_covers_all_fields(self):
        d = CounterSet().as_dict()
        assert set(d) == {
            "valu_insts", "dram_read_bytes", "dram_write_bytes",
            "l2_read_bytes", "write_stall_cycles", "busy_cycles",
        }

    def test_write_stall_fraction(self):
        counters = CounterSet(write_stall_cycles=25, busy_cycles=100)
        assert counters.write_stall_fraction == pytest.approx(0.25)

    def test_write_stall_fraction_no_cycles(self):
        assert CounterSet().write_stall_fraction == 0.0

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            CounterSet() + 5


class TestCounterAlgebra:
    """Identities the vectorized counter path relies on.

    The batched pipeline reorders *which object* performs each
    operation (columns instead of per-kernel sets) but never the
    operations themselves; these identities pin down the algebra that
    makes that reordering safe.
    """

    def test_zero_is_both_side_identity(self):
        a = _counter(7)
        assert a + CounterSet.zero() == a
        assert CounterSet.zero() + a == a

    def test_addition_associative_exactly(self):
        a, b, c = _counter(3), _counter(5), _counter(11)
        assert (a + b) + c == a + (b + c)

    def test_scaled_distributes_over_addition(self):
        a, b = _counter(4), _counter(9)
        for factor in (2.0, 0.5, 8.0):
            assert (a + b).scaled(factor) == a.scaled(factor) + b.scaled(factor)

    def test_scaled_one_is_identity_and_zero_annihilates(self):
        a = _counter(6)
        assert a.scaled(1.0) == a
        assert a.scaled(0.0) == CounterSet.zero()


class TestCounterColumns:
    def test_row_round_trips(self):
        counters = [_counter(i) for i in range(5)]
        columns = _columns(counters)
        assert len(columns) == 5
        for i, reference in enumerate(counters):
            assert columns.row(i) == reference

    def test_scaled_matches_rowwise_scaling(self):
        counters = [_counter(i) for i in range(4)]
        factors = np.array([1.0, 2.0, 0.5, 4.0])
        scaled = _columns(counters).scaled(factors)
        for i, reference in enumerate(counters):
            assert scaled.row(i) == reference.scaled(float(factors[i]))

    def test_sum_sequential_matches_reference_fold(self):
        """The exact loop the scalar executor performs: a left fold
        from ``CounterSet.zero()`` — including awkward magnitudes where
        pairwise summation would round differently."""
        rng = np.random.default_rng(42)
        counters = [
            CounterSet(
                **{
                    name: float(value)
                    for name, value in zip(
                        CounterSet().as_dict(), rng.uniform(0, 1e12, 6)
                    )
                }
            )
            for _ in range(257)
        ]
        folded = CounterSet.zero()
        for item in counters:
            folded = folded + item
        assert _columns(counters).sum_sequential() == folded

    def test_sum_sequential_of_empty_is_zero(self):
        assert _columns([]).sum_sequential() == CounterSet.zero()
