"""Unit tests for repro.core.binning."""

import pytest

from repro.core.binning import bin_stats, bin_stats_equal_mass
from repro.core.sl_stats import SlStatistics
from repro.errors import SelectionError
from tests.conftest import make_trace


def stats(seq_lens=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)) -> SlStatistics:
    return SlStatistics.from_trace(
        make_trace([(sl, sl * 0.01) for sl in seq_lens])
    )


class TestEqualWidthBinning:
    def test_partitions_all_stats(self):
        bins = bin_stats(stats(), 4)
        binned = [s.seq_len for b in bins for s in b.stats]
        assert sorted(binned) == sorted(s.seq_len for s in stats())

    def test_contiguous_and_ordered(self):
        bins = bin_stats(stats(), 3)
        for earlier, later in zip(bins, bins[1:]):
            assert max(earlier.seq_lens) < min(later.seq_lens)

    def test_equal_width_ranges(self):
        bins = bin_stats(stats(), 3)
        widths = {round(b.hi - b.lo, 6) for b in bins}
        assert len(widths) == 1

    def test_empty_bins_dropped(self):
        # SLs clustered at the extremes leave middle bins empty.
        sparse = stats(seq_lens=(1, 2, 3, 98, 99, 100))
        bins = bin_stats(sparse, 10)
        assert all(b.stats for b in bins)
        assert len(bins) < 10

    def test_k_one_single_bin(self):
        bins = bin_stats(stats(), 1)
        assert len(bins) == 1
        assert bins[0].iterations == 10

    def test_single_sl_single_bin(self):
        bins = bin_stats(stats(seq_lens=(42,)), 5)
        assert len(bins) == 1

    def test_bin_mean_is_iteration_weighted(self):
        trace = make_trace([(10, 1.0), (10, 1.0), (12, 4.0)])
        bins = bin_stats(SlStatistics.from_trace(trace), 1)
        assert bins[0].mean_time_s == pytest.approx(2.0)

    def test_invalid_k_rejected(self):
        with pytest.raises(SelectionError):
            bin_stats(stats(), 0)


class TestEqualMassBinning:
    def test_partitions_all_stats(self):
        bins = bin_stats_equal_mass(stats(), 4)
        binned = [s.seq_len for b in bins for s in b.stats]
        assert sorted(binned) == sorted(s.seq_len for s in stats())

    def test_balanced_masses(self):
        # Heavy skew: equal-mass bins even out iteration counts.
        pairs = [(sl, 0.01 * sl) for sl in (1, 1, 1, 1, 1, 1, 2, 50, 100)]
        statistics = SlStatistics.from_trace(make_trace(pairs))
        bins = bin_stats_equal_mass(statistics, 3)
        masses = [b.iterations for b in bins]
        assert max(masses) <= 2 * min(masses) + 4

    def test_returns_at_most_k_bins(self):
        assert len(bin_stats_equal_mass(stats(), 4)) <= 4

    def test_k_exceeding_stats_clamped(self):
        bins = bin_stats_equal_mass(stats(seq_lens=(1, 2)), 10)
        assert len(bins) <= 2

    def test_invalid_k_rejected(self):
        with pytest.raises(SelectionError):
            bin_stats_equal_mass(stats(), -1)
