"""The columnar path's bit-identity guarantee.

The shape-memoized epoch (``run_epoch`` default) must produce traces
bit-identical to the per-iteration reference loop
(``columnar=False``) across models, datasets, configurations, noise
settings, and epochs — runtimes, counters, kernel statistics, autotune
accounting, and the evaluation phase all included.  The same guarantee
covers the vectorized batching plan and the inference pass.
"""

import numpy as np
import pytest

from repro.api.registry import DATASETS, MODELS, build_batching
from repro.data.batching import (
    PooledBucketing,
    ShuffledBatching,
    SortaGradBatching,
    SortedBatching,
)
from repro.data.iwslt import build_iwslt
from repro.data.librispeech import build_librispeech
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.models.gnmt import build_gnmt
from repro.train.inference import InferenceRunSimulator
from repro.train.runner import TrainingRunSimulator

SCALE = 0.03


def build_simulator(network: str, config: int, sigma: float):
    """A fresh simulator (own executor + autotuner) for one scenario."""
    dataset_name = {"gnmt": "iwslt", "ds2": "librispeech"}[network]
    batching_name = {"gnmt": "pooled", "ds2": "sortagrad"}[network]
    corpus = DATASETS.create(dataset_name, scale=SCALE)
    train, evaluation = corpus.split(0.05, seed=7)
    return TrainingRunSimulator(
        model=MODELS.create(network),
        dataset=train,
        batching=build_batching(batching_name, 64, dataset=dataset_name),
        device=GpuDevice(paper_config(config)),
        eval_dataset=evaluation,
        noise_sigma=sigma,
        seed=3,
        noise_seed=config,
    )


def assert_traces_bit_identical(columnar, reference):
    left, right = columnar.frame(), reference.frame()
    assert np.array_equal(left.index, right.index)
    assert np.array_equal(left.epoch, right.epoch)
    assert np.array_equal(left.seq_len, right.seq_len)
    assert np.array_equal(left.tgt_len, right.tgt_len)
    # Exact equality, not approx: the memoized path must reproduce the
    # reference floats bit for bit.
    assert left.time_s.tolist() == right.time_s.tolist()
    assert columnar.autotune_s == reference.autotune_s
    assert columnar.eval_s == reference.eval_s
    assert np.array_equal(left.launches, right.launches)
    for name in left.counter_names:
        assert left.counter_column(name).tolist() == (
            right.counter_column(name).tolist()
        ), name
    assert left.groups == right.groups
    for group in left.groups:
        assert left.group_time_column(group).tolist() == (
            right.group_time_column(group).tolist()
        ), group
    assert columnar.records == reference.records


@pytest.mark.parametrize("sigma", [0.0, 0.02])
@pytest.mark.parametrize(
    "network,config", [("gnmt", 1), ("gnmt", 4), ("ds2", 1)]
)
class TestEpochBitIdentity:
    def test_memoized_epochs_match_reference(self, network, config, sigma):
        columnar_sim = build_simulator(network, config, sigma)
        reference_sim = build_simulator(network, config, sigma)
        for epoch in (0, 1):
            columnar = columnar_sim.run_epoch(epoch=epoch, include_eval=True)
            reference = reference_sim.run_epoch(
                epoch=epoch, include_eval=True, columnar=False
            )
            assert_traces_bit_identical(columnar, reference)


class TestPlanColumns:
    @pytest.mark.parametrize("pad_multiple", [1, 4])
    @pytest.mark.parametrize(
        "policy_cls",
        [ShuffledBatching, SortedBatching, SortaGradBatching],
    )
    def test_columns_match_plan(self, policy_cls, pad_multiple):
        corpus = build_librispeech(utterances=500)
        policy = policy_cls(64, pad_multiple=pad_multiple)
        for epoch in (0, 1):
            plan = policy.plan_epoch(corpus, epoch=epoch, seed=5)
            seq_len, tgt_len = policy.plan_epoch_columns(
                corpus, epoch=epoch, seed=5
            )
            assert seq_len.tolist() == [inputs.seq_len for inputs in plan]
            assert tgt_len.tolist() == [-1] * len(plan)

    def test_columns_match_plan_with_targets(self):
        corpus = build_iwslt(sentences=500)
        policy = PooledBucketing(64, pool_factor=3)
        for epoch in (0, 1):
            plan = policy.plan_epoch(corpus, epoch=epoch, seed=5)
            seq_len, tgt_len = policy.plan_epoch_columns(
                corpus, epoch=epoch, seed=5
            )
            assert seq_len.tolist() == [inputs.seq_len for inputs in plan]
            assert tgt_len.tolist() == [inputs.tgt_len for inputs in plan]

    def test_columns_empty_when_no_full_batch(self):
        corpus = build_librispeech(utterances=300)
        policy = SortedBatching(512)
        seq_len, tgt_len = policy.plan_epoch_columns(corpus, epoch=0, seed=0)
        assert seq_len.size == 0 and tgt_len.size == 0


class TestInferenceBitIdentity:
    @pytest.mark.parametrize("sigma", [0.0, 0.03])
    def test_memoized_pass_matches_reference(self, devices, sigma):
        corpus = build_iwslt(sentences=400)
        columnar_sim = InferenceRunSimulator(
            build_gnmt(), corpus, ShuffledBatching(16), devices[1],
            noise_sigma=sigma,
        )
        reference_sim = InferenceRunSimulator(
            build_gnmt(), corpus, ShuffledBatching(16), devices[1],
            noise_sigma=sigma,
        )
        columnar = columnar_sim.run_pass()
        reference = reference_sim.run_pass(columnar=False)
        assert_traces_bit_identical(columnar, reference)

    def test_tiny_request_set_falls_back_to_ragged_batch(self, devices):
        corpus = build_iwslt(sentences=24)
        sim = InferenceRunSimulator(
            build_gnmt(), corpus, ShuffledBatching(64), devices[1]
        )
        trace = sim.run_pass()
        assert len(trace) == 1


class TestSelectionUnaffected:
    def test_selector_sweep_identical_on_both_paths(self):
        from repro.core.baselines import FrequentSelector, MedianSelector
        from repro.core.seqpoint import SeqPointSelector

        columnar = build_simulator("gnmt", 1, 0.02).run_epoch()
        reference = build_simulator("gnmt", 1, 0.02).run_epoch(columnar=False)
        for selector in (SeqPointSelector(), FrequentSelector(), MedianSelector()):
            left = selector.select(columnar.frame())
            right = selector.select(reference.frame())
            if hasattr(left, "selection"):
                left, right = left.selection, right.selection
            assert left.seq_lens == right.seq_lens
            assert left.weights_column.tolist() == right.weights_column.tolist()
            assert left.times_column.tolist() == right.times_column.tolist()
