"""Unit tests for repro.train.frame: the columnar trace core."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.hw.counters import CounterSet
from repro.train.frame import (
    NO_TGT,
    SCHEMA_V2,
    IterationProfile,
    TraceFrame,
    as_frame,
)
from repro.train.trace import IterationRecord, TrainingTrace
from repro.util.serialize import dump_json, read_json
from tests.conftest import make_record, make_trace


def shared_profile_records(count: int) -> list[IterationRecord]:
    """Records at alternating SLs sharing two distinct profiles."""
    counters = CounterSet(valu_insts=7.0, busy_cycles=11.0)
    records = []
    for index in range(count):
        seq_len = 10 if index % 2 == 0 else 20
        records.append(
            IterationRecord(
                index=index,
                epoch=0,
                seq_len=seq_len,
                tgt_len=seq_len + 5,
                time_s=0.1 * seq_len,
                launches=seq_len,
                counters=counters,
                group_times={"GEMM-1": 0.05 * seq_len},
                kernel_names=frozenset({f"k{seq_len}"}),
            )
        )
    return records


def assert_frames_equal(left: TraceFrame, right: TraceFrame) -> None:
    assert left.model_name == right.model_name
    assert left.dataset_name == right.dataset_name
    assert left.config_name == right.config_name
    assert left.batch_size == right.batch_size
    assert left.autotune_s == right.autotune_s
    assert left.eval_s == right.eval_s
    for column in ("index", "epoch", "seq_len", "tgt_len", "time_s"):
        assert np.array_equal(getattr(left, column), getattr(right, column)), column
    assert [
        left.profiles[pid] for pid in left.profile_id
    ] == [right.profiles[pid] for pid in right.profile_id]


class TestFromRecords:
    def test_columns_match_records(self):
        trace = make_trace([(10, 1.0), (20, 2.0), (10, 1.5)])
        frame = trace.frame()
        assert len(frame) == 3
        assert frame.seq_len.tolist() == [10, 20, 10]
        assert frame.time_s.tolist() == [1.0, 2.0, 1.5]
        assert frame.tgt_len.tolist() == [NO_TGT] * 3

    def test_profiles_deduplicate_by_shape_payload(self):
        records = shared_profile_records(8)
        frame = TraceFrame.from_records("m", "d", "c", 64, records)
        assert len(frame) == 8
        assert len(frame.profiles) == 2
        assert frame.profile_id.tolist() == [0, 1] * 4

    def test_record_view_preserves_identity(self):
        trace = make_trace([(10, 1.0), (20, 2.0)])
        frame = trace.frame()
        assert frame.record(1) is trace.records[1]

    def test_derived_columns(self):
        records = shared_profile_records(4)
        frame = TraceFrame.from_records("m", "d", "c", 64, records)
        assert frame.launches.tolist() == [10, 20, 10, 20]
        assert frame.counter_column("valu_insts").tolist() == [7.0] * 4
        assert frame.group_time_column("GEMM-1").tolist() == [
            0.5, 1.0, 0.5, 1.0,
        ]
        assert frame.groups == ("GEMM-1",)
        totals = frame.counter_totals()
        assert totals.valu_insts == pytest.approx(28.0)

    def test_unknown_counter_rejected(self):
        frame = make_trace([(10, 1.0)]).frame()
        with pytest.raises(TraceError, match="unknown counter"):
            frame.counter_column("nope")

    def test_non_positive_time_rejected(self):
        frame = make_trace([(10, 1.0)]).frame()
        with pytest.raises(TraceError, match="non-positive time"):
            TraceFrame(
                model_name="m",
                dataset_name="d",
                config_name="c",
                batch_size=64,
                index=frame.index,
                epoch=frame.epoch,
                seq_len=frame.seq_len,
                tgt_len=frame.tgt_len,
                time_s=np.zeros(1),
                profile_id=frame.profile_id,
                profiles=frame.profiles,
            )

    def test_profile_id_out_of_range_rejected(self):
        frame = make_trace([(10, 1.0)]).frame()
        with pytest.raises(TraceError, match="profile pool"):
            TraceFrame(
                model_name="m",
                dataset_name="d",
                config_name="c",
                batch_size=64,
                index=frame.index,
                epoch=frame.epoch,
                seq_len=frame.seq_len,
                tgt_len=frame.tgt_len,
                time_s=frame.time_s,
                profile_id=np.array([5], dtype=np.int64),
                profiles=frame.profiles,
            )

    def test_column_length_mismatch_rejected(self):
        frame = make_trace([(10, 1.0), (20, 2.0)]).frame()
        with pytest.raises(TraceError, match="column"):
            TraceFrame(
                model_name="m",
                dataset_name="d",
                config_name="c",
                batch_size=64,
                index=frame.index,
                epoch=frame.epoch,
                seq_len=frame.seq_len[:1],
                tgt_len=frame.tgt_len,
                time_s=frame.time_s,
                profile_id=frame.profile_id,
                profiles=frame.profiles,
            )


class TestLazyView:
    def test_from_frame_materialises_records_on_demand(self):
        frame = TraceFrame.from_records(
            "m", "d", "c", 64, shared_profile_records(4)
        )
        trace = TrainingTrace.from_frame(frame)
        assert len(trace) == 4
        assert trace.total_time_s == pytest.approx(frame.total_time_s)
        records = trace.records
        assert [r.seq_len for r in records] == [10, 20, 10, 20]
        assert records[1].tgt_len == 25

    def test_mutating_records_rebuilds_frame(self):
        trace = make_trace([(10, 1.0)])
        assert trace.frame().seq_len.tolist() == [10]
        trace.records.append(make_record(1, 30, 3.0))
        assert trace.frame().seq_len.tolist() == [10, 30]
        trace.records.clear()
        assert len(trace.frame()) == 0
        with pytest.raises(TraceError):
            trace.throughput

    def test_phase_updates_propagate_to_frame(self):
        trace = make_trace([(10, 1.0)])
        trace.autotune_s = 2.0
        trace.eval_s = 0.5
        frame = trace.frame()
        assert frame.autotune_s == 2.0
        assert frame.eval_s == 0.5
        assert trace.wall_time_s == pytest.approx(3.5)

    def test_as_frame_accepts_both(self):
        trace = make_trace([(10, 1.0)])
        frame = trace.frame()
        assert as_frame(frame) is frame
        assert as_frame(trace) is frame

    def test_as_frame_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_frame(42)

    def test_records_assignable(self):
        trace = make_trace([(10, 1.0), (20, 2.0)])
        trace.records = [make_record(0, 30, 3.0)]
        assert trace.frame().seq_len.tolist() == [30]
        trace.records += [make_record(1, 40, 4.0)]
        assert trace.frame().seq_len.tolist() == [30, 40]

    def test_structural_equality(self, tmp_path):
        trace = make_trace([(10, 1.0), (20, 2.0)])
        path = tmp_path / "t.json"
        trace.save(path)
        assert TrainingTrace.load(path) == trace
        other = make_trace([(10, 1.0)])
        assert trace != other
        assert trace != "not a trace"

    def test_materialised_records_own_their_group_times(self):
        frame = TraceFrame.from_records(
            "m", "d", "c", 64, shared_profile_records(4)
        )
        records = TrainingTrace.from_frame(frame).records
        records[0].group_times["GEMM-1"] = 99.0
        # Siblings of the same shape and the profile pool are untouched.
        assert records[2].group_times["GEMM-1"] == 0.5
        assert frame.profiles[0].group_times["GEMM-1"] == 0.5


class TestPersistence:
    def make_seq2seq_trace(self):
        trace = TrainingTrace("m", "d", "c", 32)
        trace.records.extend(shared_profile_records(6))
        trace.autotune_s = 1.25
        trace.eval_s = 0.75
        return trace

    def test_v2_round_trip_bit_equality(self, tmp_path):
        trace = self.make_seq2seq_trace()
        path = tmp_path / "trace.json"
        trace.save(path, version=2)
        assert read_json(path)["schema"] == SCHEMA_V2
        loaded = TrainingTrace.load(path)
        assert_frames_equal(loaded.frame(), trace.frame())
        assert loaded.records == trace.records

    def test_v1_file_loads_into_same_frame(self, tmp_path):
        trace = self.make_seq2seq_trace()
        v1 = tmp_path / "v1.json"
        v2 = tmp_path / "v2.json"
        trace.save(v1, version=1)
        trace.save(v2, version=2)
        assert read_json(v1)["schema"] == "repro.training-trace.v1"
        from_v1 = TrainingTrace.load(v1)
        from_v2 = TrainingTrace.load(v2)
        assert_frames_equal(from_v1.frame(), trace.frame())
        assert_frames_equal(from_v1.frame(), from_v2.frame())
        assert from_v1.records == trace.records

    def test_v1_compact_profiles(self, tmp_path):
        trace = self.make_seq2seq_trace()
        path = tmp_path / "v1.json"
        trace.save(path, version=1)
        assert len(TrainingTrace.load(path).frame().profiles) == 2

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        dump_json({"records": []}, path, "repro.training-trace.v99")
        with pytest.raises(TraceError, match="unknown trace schema"):
            TrainingTrace.load(path)

    def test_unknown_save_version_rejected(self, tmp_path):
        trace = make_trace([(10, 1.0)])
        with pytest.raises(TraceError, match="unknown trace format"):
            trace.save(tmp_path / "t.json", version=99)

    def test_profile_sharing_survives_round_trip(self, tmp_path):
        trace = self.make_seq2seq_trace()
        path = tmp_path / "trace.json"
        trace.save(path, version=2)
        loaded = TrainingTrace.load(path)
        payload = read_json(path)
        assert len(payload["profiles"]) == 2
        assert payload["iterations"]["profile"] == [0, 1] * 3
        assert loaded.frame().time_s.tolist() == trace.frame().time_s.tolist()


class TestIterationProfile:
    def test_dedup_key_distinguishes_payloads(self):
        base = IterationProfile(
            launches=3,
            counters=CounterSet(valu_insts=1.0),
            group_times={"GEMM-1": 0.5},
            kernel_names=frozenset({"k"}),
        )
        same = IterationProfile(
            launches=3,
            counters=CounterSet(valu_insts=1.0),
            group_times={"GEMM-1": 0.5},
            kernel_names=frozenset({"k"}),
        )
        other = IterationProfile(
            launches=3,
            counters=CounterSet(valu_insts=2.0),
            group_times={"GEMM-1": 0.5},
            kernel_names=frozenset({"k"}),
        )
        assert base.dedup_key() == same.dedup_key()
        assert base.dedup_key() != other.dedup_key()
