"""Unit tests for repro.train.iteration."""

import pytest

from repro.models.ds2 import build_ds2
from repro.models.gnmt import build_gnmt
from repro.models.spec import IterationInputs
from repro.train.iteration import IterationExecutor


class TestIterationExecutor:
    def test_result_fields_consistent(self, device1):
        executor = IterationExecutor(build_ds2(), device1)
        result = executor.run(IterationInputs(64, 200))
        assert result.time_s > 0
        assert result.launches > 100
        assert sum(result.group_times.values()) <= result.time_s
        assert result.kernel_names

    def test_host_overhead_included(self, device1):
        cheap = IterationExecutor(build_ds2(), device1, host_overhead_s=0.0)
        costly = IterationExecutor(build_ds2(), device1, host_overhead_s=0.5)
        inputs = IterationInputs(64, 100)
        assert costly.run(inputs).time_s == pytest.approx(
            cheap.run(inputs).time_s + 0.5
        )

    def test_memoised_per_inputs(self, device1):
        executor = IterationExecutor(build_ds2(), device1)
        first = executor.run(IterationInputs(64, 100))
        second = executor.run(IterationInputs(64, 100))
        assert first is second

    def test_distinct_inputs_distinct_results(self, device1):
        executor = IterationExecutor(build_ds2(), device1)
        assert (
            executor.run(IterationInputs(64, 100)).time_s
            != executor.run(IterationInputs(64, 400)).time_s
        )

    def test_forward_cheaper_than_training(self, device1):
        executor = IterationExecutor(build_gnmt(), device1)
        inputs = IterationInputs(64, 50, 55)
        assert (
            executor.run_forward(inputs).time_s
            < executor.run(inputs).time_s / 2
        )

    def test_gemm_shapes_collected(self, device1):
        executor = IterationExecutor(build_ds2(), device1)
        result = executor.run(IterationInputs(64, 804))
        assert (29, 25728, 1600) in result.gemm_shapes

    def test_negative_overhead_rejected(self, device1):
        with pytest.raises(ValueError):
            IterationExecutor(build_ds2(), device1, host_overhead_s=-1.0)
