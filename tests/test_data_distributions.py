"""Unit tests for repro.data.distributions."""

import numpy as np
import pytest

from repro.data.distributions import LogNormalLengths, MixtureLengths
from repro.errors import ConfigurationError
from repro.util.rng import make_rng


class TestLogNormalLengths:
    def test_respects_bounds(self):
        dist = LogNormalLengths(median=16, sigma=0.6, min_len=1, max_len=200)
        lengths = dist.sample(make_rng(0), 10_000)
        assert lengths.min() >= 1
        assert lengths.max() <= 200

    def test_median_calibrated(self):
        dist = LogNormalLengths(median=16, sigma=0.6, min_len=1, max_len=500)
        lengths = dist.sample(make_rng(0), 50_000)
        assert 14 <= np.median(lengths) <= 18

    def test_integer_lengths(self):
        dist = LogNormalLengths(median=10, sigma=0.3, min_len=1, max_len=100)
        assert dist.sample(make_rng(1), 10).dtype == np.int64

    def test_deterministic_per_seed(self):
        dist = LogNormalLengths(median=10, sigma=0.3, min_len=1, max_len=100)
        a = dist.sample(make_rng(5), 100)
        b = dist.sample(make_rng(5), 100)
        assert np.array_equal(a, b)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            LogNormalLengths(median=10, sigma=0.3, min_len=10, max_len=5)

    def test_invalid_median_rejected(self):
        with pytest.raises(ConfigurationError):
            LogNormalLengths(median=0, sigma=0.3, min_len=1, max_len=5)

    def test_zero_count_rejected(self):
        dist = LogNormalLengths(median=10, sigma=0.3, min_len=1, max_len=100)
        with pytest.raises(ValueError):
            dist.sample(make_rng(0), 0)


class TestMixtureLengths:
    def mixture(self) -> MixtureLengths:
        return MixtureLengths.of(
            (0.3, LogNormalLengths(median=50, sigma=0.2, min_len=10, max_len=100)),
            (0.7, LogNormalLengths(median=500, sigma=0.2, min_len=200, max_len=900)),
        )

    def test_bimodal(self):
        lengths = self.mixture().sample(make_rng(0), 20_000)
        short = (lengths <= 100).mean()
        assert 0.25 <= short <= 0.35

    def test_all_within_component_bounds(self):
        lengths = self.mixture().sample(make_rng(0), 5_000)
        assert lengths.min() >= 10
        assert lengths.max() <= 900

    def test_empty_mixture_rejected(self):
        with pytest.raises(ConfigurationError):
            MixtureLengths(components=())

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            MixtureLengths.of(
                (0.0, LogNormalLengths(median=5, sigma=0.1, min_len=1, max_len=10))
            )
