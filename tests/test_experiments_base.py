"""Unit tests for the ExperimentResult container."""

import pytest

from repro.experiments.base import ExperimentResult


def result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="figXX",
        title="demo",
        headers=["name", "value"],
        rows=[["a", 1], ["b", 2]],
        notes=["a note"],
    )


class TestExperimentResult:
    def test_render_contains_id_title_notes(self):
        text = result().render()
        assert "[figXX] demo" in text
        assert "note: a note" in text
        assert "a" in text and "2" in text

    def test_column_lookup(self):
        assert result().column("value") == [1, 2]

    def test_column_unknown_header(self):
        with pytest.raises(ValueError):
            result().column("missing")

    def test_render_without_notes(self):
        bare = ExperimentResult("id", "t", ["h"], [[1]])
        assert "note:" not in bare.render()
