"""Unit tests for the streaming convergence loop."""

import pytest

from repro.core.seqpoint import SeqPointSelector
from repro.errors import ConfigurationError
from repro.stream import (
    StreamingIdentifier,
    StreamingSlStatistics,
    TraceReplayFeed,
    replay,
)
from repro.stream.feed import FrameSlice
from tests.conftest import make_trace

#: A perfectly periodic stream: the per-SL means never move, so the
#: selection stabilises as soon as the window allows.
CYCLE = [(10, 0.1), (20, 0.2), (30, 0.3), (40, 0.4)]


def periodic_trace(repeats: int = 50):
    return make_trace(CYCLE * repeats)


def shifted_trace(repeats: int = 50, shift_at: int = 100, factor: float = 2.0):
    """Periodic, but every runtime jumps by ``factor`` at ``shift_at``."""
    pairs = (CYCLE * repeats)[: repeats * len(CYCLE)]
    return make_trace(
        [
            (sl, t * factor if i >= shift_at else t)
            for i, (sl, t) in enumerate(pairs)
        ]
    )


class TestValidation:
    def test_selector_must_expose_select(self):
        with pytest.raises(ConfigurationError, match="select"):
            StreamingIdentifier(object())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cadence": 0},
            {"patience": 0},
            {"rtol": 0.0},
            {"drift_rtol": -1.0},
            {"sl_rtol": -0.1},
            {"min_iterations": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            StreamingIdentifier(SeqPointSelector(), **kwargs)

    def test_selector_outcome_must_be_a_selection(self):
        class Junk:
            def select(self, trace):
                return 42

        with pytest.raises(ConfigurationError, match="Selection"):
            StreamingIdentifier(Junk(), cadence=4).run(
                replay(periodic_trace(3).frame())
            )

    def test_empty_feed_rejected(self):
        identifier = StreamingIdentifier(SeqPointSelector())
        with pytest.raises(ConfigurationError, match="no iterations"):
            identifier.run([])


class TestConvergence:
    def test_periodic_stream_stops_early(self):
        frame = periodic_trace(50).frame()  # 200 iterations
        run = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=3
        ).run(replay(frame))
        assert run.converged
        assert run.iterations_consumed == 60  # 3 agreeing checks
        assert run.iterations_consumed < len(frame)
        assert len(run.checks) == 3
        assert run.checks[-1].stable_checks == 3
        assert {point.seq_len for point in run.selection.points} == {
            10, 20, 30, 40,
        }

    def test_patience_delays_convergence(self):
        frame = periodic_trace(50).frame()
        eager = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=2
        ).run(replay(frame))
        cautious = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=5
        ).run(replay(frame))
        assert eager.iterations_consumed < cautious.iterations_consumed

    def test_exhausted_stream_reports_unconverged(self):
        frame = periodic_trace(10).frame()  # 40 iterations
        run = StreamingIdentifier(
            SeqPointSelector(), cadence=30, patience=5
        ).run(replay(frame))
        assert not run.converged
        assert run.iterations_consumed == len(frame)
        # The final (exhaustion) check still produced a selection.
        assert run.checks[-1].iterations == len(frame)
        assert len(run.selection) == 4

    def test_exhaustion_check_never_newly_declares_convergence(self):
        """The forced off-boundary check at exhaustion yields a final
        selection but must not flip `converged`: the stream ended, it
        did not demonstrate `patience` agreeing boundary checks."""
        pairs = (CYCLE * 13)[:50]
        run = StreamingIdentifier(
            SeqPointSelector(), cadence=30, patience=2, rtol=0.05
        ).run(replay(make_trace(pairs).frame()))
        # Boundary check at 30, forced exhaustion check at 50 — they
        # agree, so the stability counter reads `patience`, yet the
        # run still reports unconverged.
        assert [c.iterations for c in run.checks] == [30, 50]
        assert run.checks[-1].stable_checks == 2
        assert not run.converged
        assert run.iterations_consumed == 50
        assert len(run.selection) == 4

    def test_stream_shorter_than_cadence_still_selects(self):
        frame = periodic_trace(2).frame()  # 8 iterations
        run = StreamingIdentifier(
            SeqPointSelector(), cadence=100, patience=2
        ).run(replay(frame))
        assert not run.converged
        assert len(run.checks) == 1
        assert run.checks[0].iterations == 8

    def test_min_iterations_defers_first_check(self):
        frame = periodic_trace(50).frame()
        run = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=2, min_iterations=70
        ).run(replay(frame))
        assert run.checks[0].iterations == 80  # first boundary past 70

    @pytest.mark.parametrize("min_iterations", [20, 40])
    def test_min_iterations_on_a_boundary_checks_there(self, min_iterations):
        """A warm-up that is a cadence multiple still checks at itself,
        identically for every chunk granularity."""
        frame = periodic_trace(50).frame()
        runs = [
            StreamingIdentifier(
                SeqPointSelector(),
                cadence=20,
                patience=100,
                min_iterations=min_iterations,
            ).run(replay(frame, chunk_size=chunk))
            for chunk in (1, 13, len(frame))
        ]
        for run in runs:
            assert run.checks[0].iterations == min_iterations
            assert [c.iterations for c in run.checks] == [
                c.iterations for c in runs[0].checks
            ]

    def test_identification_error_scored_against_prefix(self):
        frame = periodic_trace(50).frame()
        run = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=3
        ).run(replay(frame))
        consumed_time = float(frame.time_s[: run.iterations_consumed].sum())
        assert run.prefix_total_s == pytest.approx(consumed_time)
        assert run.identification_error_pct < 1e-6  # all-unique, no noise

    def test_project_epoch_time_extrapolates(self):
        frame = periodic_trace(50).frame()
        run = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=3
        ).run(replay(frame))
        full = run.project_epoch_time(len(frame))
        assert full == pytest.approx(frame.total_time_s, rel=1e-9)
        with pytest.raises(ConfigurationError):
            run.project_epoch_time(0)


class TestDriftGuard:
    def test_runtime_shift_resets_the_window(self):
        frame = shifted_trace(repeats=60, shift_at=120, factor=2.0).frame()
        run = StreamingIdentifier(
            SeqPointSelector(),
            cadence=20,
            patience=100,  # never converge: observe every check
            drift_rtol=0.05,
        ).run(replay(frame))
        resets = [check for check in run.checks if check.drift_reset]
        assert resets, "the 2x runtime shift must trip the drift guard"
        assert resets[0].iterations == 140  # first check past the shift
        # The drifted check itself is no evidence of stability: the
        # window restarts empty, not at 1.
        assert resets[0].stable_checks == 0

    def test_appearing_sls_trip_the_guard(self):
        """SLs the previous check never saw count as drift (the guard
        compares the union of SL sets, not just the previously seen)."""
        # First 120 iterations cycle SLs 10..40; then brand-new SLs
        # 50..80 arrive with the SAME per-SL runtimes, so a guard that
        # only rechecks previously-seen means would never fire.
        pairs = CYCLE * 30 + [(50, 0.1), (60, 0.2), (70, 0.3), (80, 0.4)] * 30
        run = StreamingIdentifier(
            SeqPointSelector(),
            cadence=20,
            patience=100,
            drift_rtol=0.05,
        ).run(replay(make_trace(pairs).frame()))
        resets = [check for check in run.checks if check.drift_reset]
        assert resets, "appearing SLs must trip the union drift guard"
        assert resets[0].iterations == 140  # first check past the switch
        assert resets[0].stable_checks == 0

    def test_reset_restarts_the_patience_clock_in_full(self):
        """After a reset, convergence needs `patience` agreements that
        all POST-date the drifted check — it must not count itself."""
        # Stationary cycle, then disjoint SLs with the same runtimes.
        # The warm-up defers the first check to 120 (pre-switch), the
        # appearing SLs reset at 140, and every later check agrees.
        pairs = CYCLE * 30 + [(50, 0.1), (60, 0.2), (70, 0.3), (80, 0.4)] * 25
        run = StreamingIdentifier(
            SeqPointSelector(),
            cadence=20,
            patience=3,
            drift_rtol=0.05,
            min_iterations=110,
        ).run(replay(make_trace(pairs).frame()))
        assert [c.iterations for c in run.checks if c.drift_reset] == [140]
        assert run.converged
        # Agreements at 160, 180, 200 — were the drifted check counted
        # as its own first agreement, 180 would have sufficed.
        assert run.iterations_consumed == 200
        assert [c.stable_checks for c in run.checks] == [1, 0, 1, 2, 3]

    def test_stationary_stream_never_trips_the_guard(self):
        frame = periodic_trace(60).frame()
        run = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=100, drift_rtol=0.05
        ).run(replay(frame))
        assert not any(check.drift_reset for check in run.checks)

    def test_drift_delays_convergence(self):
        stationary = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=3, drift_rtol=0.05
        ).run(replay(periodic_trace(60).frame()))
        # Shift before the stationary convergence point (60), so the
        # guard fires while the window is still filling.
        drifting = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=3, drift_rtol=0.05
        ).run(replay(shifted_trace(repeats=60, shift_at=30).frame()))
        assert stationary.converged
        assert drifting.iterations_consumed > stationary.iterations_consumed


class TestFeeds:
    def test_record_chunks_equal_frame_slices(self):
        trace = periodic_trace(30)
        frame = trace.frame()
        identifier = StreamingIdentifier(
            SeqPointSelector(), cadence=16, patience=3
        )
        from_slices = identifier.run(replay(frame, chunk_size=5))
        records = trace.records
        from_records = identifier.run(
            [records[i : i + 5] for i in range(0, len(records), 5)]
        )
        assert from_slices.converged == from_records.converged
        assert from_slices.iterations_consumed == from_records.iterations_consumed
        assert [c.selected for c in from_slices.checks] == [
            c.selected for c in from_records.checks
        ]

    def test_checks_invariant_under_rechunking(self):
        frame = periodic_trace(40).frame()
        runs = [
            StreamingIdentifier(
                SeqPointSelector(), cadence=24, patience=3
            ).run(replay(frame, chunk_size=chunk))
            for chunk in (1, 7, len(frame))
        ]
        baseline = [(c.iterations, c.selected) for c in runs[0].checks]
        for run in runs[1:]:
            assert [(c.iterations, c.selected) for c in run.checks] == baseline
            assert run.iterations_consumed == runs[0].iterations_consumed

    def test_resuming_an_accumulator(self):
        frame = periodic_trace(40).frame()
        stats = StreamingSlStatistics.for_frame(frame)
        stats.absorb_frame(frame, 0, 10)
        run = StreamingIdentifier(
            SeqPointSelector(), cadence=20, patience=3
        ).run([FrameSlice(frame, 10, len(frame))], stats=stats)
        assert run.stats is stats
        assert run.checks[0].iterations == 20  # counts the resumed prefix

    def test_feed_validation(self):
        frame = periodic_trace(2).frame()
        with pytest.raises(Exception):
            TraceReplayFeed(frame, chunk_size=0)
        with pytest.raises(Exception):
            FrameSlice(frame, 4, 2)
        feed = TraceReplayFeed(frame, chunk_size=3)
        assert len(feed) == 8
        slices = list(feed)
        assert [(s.start, s.stop) for s in slices] == [(0, 3), (3, 6), (6, 8)]
        assert list(feed), "feed must be re-iterable"


class TestIdentificationSession:
    """begin()/absorb()/finish() must match run() chunk for chunk."""

    def test_session_matches_run_bit_for_bit(self):
        frame = periodic_trace(40).frame()
        identifier = StreamingIdentifier(SeqPointSelector(), cadence=16, patience=3)
        pulled = identifier.run(replay(frame, chunk_size=5))

        session = identifier.begin(StreamingSlStatistics.for_frame(frame))
        converged = False
        for chunk in replay(frame, chunk_size=5):
            if session.absorb(chunk):
                converged = True
                break
        pushed = session.finish()
        assert converged == pushed.converged == pulled.converged
        assert pushed.iterations_consumed == pulled.iterations_consumed
        assert [c.to_dict() for c in pushed.checks] == [
            c.to_dict() for c in pulled.checks
        ]
        assert pushed.identification_error_pct == pulled.identification_error_pct
        assert pushed.projected_prefix_total_s == pulled.projected_prefix_total_s

    def test_session_accepts_record_chunks(self):
        records = periodic_trace(30).records
        identifier = StreamingIdentifier(SeqPointSelector(), cadence=12, patience=2)
        session = identifier.begin()
        for start in range(0, len(records), 7):
            if session.absorb(records[start : start + 7]):
                break
        run = session.finish()
        reference = identifier.run([records])
        assert run.converged == reference.converged
        assert run.iterations_consumed == reference.iterations_consumed
        assert run.selection.method == reference.selection.method

    def test_absorb_after_convergence_is_a_noop(self):
        frame = periodic_trace(40).frame()
        identifier = StreamingIdentifier(SeqPointSelector(), cadence=8, patience=2)
        session = identifier.begin(StreamingSlStatistics.for_frame(frame))
        chunks = iter(replay(frame, chunk_size=8))
        while not session.absorb(next(chunks)):
            pass
        consumed = session.iterations_consumed
        assert session.absorb(next(chunks)) is True
        assert session.iterations_consumed == consumed

    def test_finish_empty_session_raises(self):
        session = StreamingIdentifier(SeqPointSelector()).begin()
        with pytest.raises(ConfigurationError):
            session.finish()
