"""Small-scale smoke tests for every experiment module.

Runs the full registry at a tiny corpus scale: asserts each experiment
produces a well-formed table. The paper-shape assertions live in
``benchmarks/`` where they run at meaningful scale.
"""

import pytest

from repro.experiments import registry, run_all
from repro.experiments.base import ExperimentResult
from repro.experiments.setups import epoch_trace, runner, scenario
from repro.errors import ConfigurationError

SCALE = 0.01  # ~1.3k GNMT sentences / ~285 DS2 utterances


@pytest.mark.parametrize("experiment_id", sorted(registry()))
def test_experiment_produces_table(experiment_id):
    result = registry()[experiment_id](SCALE)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.headers
    assert result.rows
    for row in result.rows:
        assert len(row) == len(result.headers)
    rendered = result.render()
    assert experiment_id in rendered


def test_run_all_covers_registry():
    results = run_all(SCALE)
    assert {r.experiment_id for r in results} == set(registry())


def test_registry_is_copy():
    registry()["fig03"] = None
    assert registry()["fig03"] is not None


class TestSetups:
    def test_scenario_cached(self):
        assert scenario("gnmt", SCALE) is scenario("gnmt", SCALE)

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario("bert", SCALE)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario("gnmt", 0.0)

    def test_trace_cached_per_config(self):
        assert epoch_trace("ds2", 1, SCALE) is epoch_trace("ds2", 1, SCALE)
        assert epoch_trace("ds2", 1, SCALE) is not epoch_trace("ds2", 2, SCALE)

    def test_runner_uses_requested_config(self):
        assert runner("ds2", 3, SCALE).device.config.num_cus == 16

    def test_gnmt_uses_pooled_bucketing(self):
        from repro.data.batching import PooledBucketing

        assert isinstance(scenario("gnmt", SCALE).batching(), PooledBucketing)

    def test_ds2_uses_sortagrad(self):
        from repro.data.batching import SortaGradBatching

        policy = scenario("ds2", SCALE).batching()
        assert isinstance(policy, SortaGradBatching)
        assert policy.pad_multiple == 4
