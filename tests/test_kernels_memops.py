"""Unit tests for repro.kernels.memops."""

import pytest

from repro.kernels.memops import copy_transform


class TestCopyTransform:
    def test_copy_moves_bytes_once(self):
        inv = copy_transform("copy", 1000)
        assert inv.work.traffic.read_bytes == 4000
        assert inv.work.traffic.write_bytes == 4000

    def test_transpose_reads_extra(self):
        copy = copy_transform("copy", 1000)
        transpose = copy_transform("transpose", 1000)
        assert transpose.work.traffic.read_bytes > copy.work.traffic.read_bytes

    def test_all_known_transforms(self):
        for transform in ("copy", "transpose", "concat", "pad", "slice"):
            inv = copy_transform(transform, 64)
            assert inv.op == transform

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError, match="unknown transform"):
            copy_transform("shuffle", 10)

    def test_zero_elements_rejected(self):
        with pytest.raises(ValueError):
            copy_transform("copy", 0)

    def test_pure_data_movement(self):
        assert copy_transform("concat", 100).flops == 0.0
