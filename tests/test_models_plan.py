"""Unit tests for repro.models.plan (SchedulePlan + PlanCache)."""

import numpy as np
import pytest

from repro.hw.config import paper_config
from repro.kernels.elementwise import elementwise
from repro.kernels.gemm import gemm
from repro.models.plan import PLAN_CACHE, PlanCache, compile_plan
from repro.models.schedule import KernelSchedule


def sample_schedule(config=None) -> KernelSchedule:
    config = config or paper_config(1)
    schedule = KernelSchedule()
    schedule.add(gemm(256, 512, 128, config, group="GEMM-1"), 10)
    schedule.add(elementwise("tanh", 1 << 16, group="scalar-op"), 10)
    schedule.add(gemm(256, 512, 128, config, group="GEMM-1"), 5)
    schedule.add(gemm(64, 64, 64, config, group="GEMM-2"), 1)
    return schedule


class TestCompilePlan:
    def test_rows_match_merged_schedule(self):
        schedule = sample_schedule()
        plan = compile_plan(schedule)
        merged = list(schedule.merged())
        assert len(plan) == len(merged)
        for row, (invocation, count) in enumerate(merged):
            assert plan.counts[row] == count
            assert plan.groups[plan.group_id[row]] == invocation.group
            assert plan.names[plan.name_id[row]] == invocation.name
            assert plan.work.row(row) == invocation.work

    def test_string_tables_intern_first_appearance_order(self):
        plan = compile_plan(sample_schedule())
        assert plan.groups == ("GEMM-1", "scalar-op", "GEMM-2")
        assert len(plan.names) == len(set(plan.names))

    def test_gemm_shapes_launch_order_unmerged(self):
        schedule = sample_schedule()
        plan = compile_plan(schedule)
        assert plan.gemm_shapes == tuple(schedule.gemm_shapes())
        # Unmerged: the repeated GEMM appears twice, in launch order.
        assert plan.gemm_shapes == (
            (256, 512, 128), (256, 512, 128), (64, 64, 64),
        )

    def test_aggregates_match_schedule(self):
        schedule = sample_schedule()
        plan = compile_plan(schedule)
        assert plan.launch_count == schedule.launch_count
        assert plan.total_flops == pytest.approx(schedule.total_flops)

    def test_equal_but_distinct_invocations_coalesce(self):
        """Distinct objects that compare equal must merge, exactly like
        KernelSchedule.merged() — the identity pre-merge is only a fast
        path."""
        from repro.kernels.base import make_invocation

        def fresh():
            make_invocation.cache_clear()
            return make_invocation(
                name="k", op="x", group="g", shape=(4,),
                flops=16.0, work_items=64, read_bytes=256.0,
                write_bytes=256.0, issue_efficiency=0.5,
            )

        first, second = fresh(), fresh()
        assert first is not second and first == second
        schedule = KernelSchedule([(first, 3), (second, 4)])
        plan = compile_plan(schedule)
        assert len(plan) == 1
        assert plan.counts[0] == 7

    def test_empty_schedule_compiles(self):
        plan = compile_plan(KernelSchedule())
        assert len(plan) == 0
        assert plan.launch_count == 0
        assert plan.gemm_shapes == ()
        assert plan.groups == ()

    def test_schedule_compiled_method(self):
        schedule = sample_schedule()
        plan = schedule.compiled()
        assert len(plan) == len(schedule.merged())

    def test_columns_are_int64(self):
        plan = compile_plan(sample_schedule())
        assert plan.counts.dtype == np.int64
        assert plan.group_id.dtype == np.int64
        assert plan.name_id.dtype == np.int64


class TestPlanCache:
    def test_miss_then_hit_same_object(self):
        cache = PlanCache()
        built = []

        def build():
            built.append(1)
            return compile_plan(sample_schedule())

        key = ("model", "train", 64, 100, None, "config")
        first = cache.get_or_compile(key, build)
        second = cache.get_or_compile(key, build)
        assert first is second
        assert built == [1]
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_clear_resets(self):
        cache = PlanCache()
        cache.get_or_compile(("k",), lambda: compile_plan(KernelSchedule()))
        cache.clear()
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}
        assert len(cache) == 0

    def test_process_wide_cache_exists(self):
        assert isinstance(PLAN_CACHE, PlanCache)
