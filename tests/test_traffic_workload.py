"""Request workloads: mixture schedules over real corpus distributions."""

import numpy as np
import pytest

from repro.api.registry import DATASETS
from repro.errors import ConfigurationError
from repro.traffic import TrafficPhase, sample_requests
from repro.train.frame import NO_TGT


@pytest.fixture(scope="module")
def iwslt():
    return DATASETS.create("iwslt", scale=0.01)


@pytest.fixture(scope="module")
def librispeech():
    return DATASETS.create("librispeech", scale=0.01)


class TestTrafficPhase:
    def test_defaults_span_full_distribution(self):
        phase = TrafficPhase(1.0)
        assert (phase.quantile_lo, phase.quantile_hi) == (0.0, 1.0)

    def test_from_value_accepts_mapping(self):
        phase = TrafficPhase.from_value({"fraction": 2, "quantile_hi": 0.5})
        assert phase == TrafficPhase(2.0, 0.0, 0.5)

    def test_from_value_passes_phase_through(self):
        phase = TrafficPhase(1.0)
        assert TrafficPhase.from_value(phase) is phase

    def test_dict_round_trip(self):
        phase = TrafficPhase(0.5, 0.25, 0.75)
        assert TrafficPhase.from_value(phase.to_dict()) == phase

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown TrafficPhase"):
            TrafficPhase.from_value({"fraction": 1.0, "ratio": 2})

    def test_fraction_required(self):
        with pytest.raises(ConfigurationError, match="'fraction'"):
            TrafficPhase.from_value({"quantile_lo": 0.2})

    def test_fraction_positive(self):
        with pytest.raises(ConfigurationError, match="fraction"):
            TrafficPhase(0.0)

    def test_quantile_window_ordering(self):
        with pytest.raises(ConfigurationError, match="quantile window"):
            TrafficPhase(1.0, 0.7, 0.3)


class TestSampleRequests:
    def test_deterministic(self, iwslt):
        phases = (TrafficPhase(1.0),)
        first = sample_requests(iwslt, phases, 256, seed=5)
        second = sample_requests(iwslt, phases, 256, seed=5)
        assert np.array_equal(first.seq_len, second.seq_len)
        assert np.array_equal(first.tgt_len, second.tgt_len)
        assert not np.array_equal(
            first.seq_len, sample_requests(iwslt, phases, 256, seed=6).seq_len
        )

    def test_count_exact_under_remainders(self, iwslt):
        phases = (TrafficPhase(1.0), TrafficPhase(1.0), TrafficPhase(1.0))
        requests = sample_requests(iwslt, phases, 100, seed=0)
        assert len(requests) == 100
        # Floor allocation credits the remainder to the last phase.
        assert np.count_nonzero(requests.phase == 2) == 34

    def test_quantile_windows_bound_lengths(self, iwslt):
        lengths = iwslt.lengths
        requests = sample_requests(
            iwslt, (TrafficPhase(1.0, 0.0, 0.4),), 512, seed=1
        )
        assert requests.seq_len.max() <= np.quantile(lengths, 0.4)

    def test_phase_column_orders_the_schedule(self, iwslt):
        requests = sample_requests(
            iwslt,
            (TrafficPhase(0.5, 0.0, 0.5), TrafficPhase(0.5, 0.5, 1.0)),
            64,
            seed=0,
        )
        assert np.all(np.diff(requests.phase) >= 0)
        assert set(requests.phase.tolist()) == {0, 1}

    def test_editing_one_phase_leaves_others_untouched(self, iwslt):
        base = sample_requests(
            iwslt,
            (TrafficPhase(0.5), TrafficPhase(0.5, 0.5, 1.0)),
            64,
            seed=0,
        )
        edited = sample_requests(
            iwslt,
            (TrafficPhase(0.5), TrafficPhase(0.5, 0.0, 0.5)),
            64,
            seed=0,
        )
        first_half = base.phase == 0
        assert np.array_equal(
            base.seq_len[first_half], edited.seq_len[first_half]
        )

    def test_targets_follow_the_corpus(self, iwslt, librispeech):
        with_targets = sample_requests(iwslt, (TrafficPhase(1.0),), 32, seed=0)
        assert np.all(with_targets.tgt_len > 0)
        without = sample_requests(librispeech, (TrafficPhase(1.0),), 32, seed=0)
        assert np.all(without.tgt_len == NO_TGT)

    def test_count_must_be_positive(self, iwslt):
        with pytest.raises(ConfigurationError, match="request count"):
            sample_requests(iwslt, (TrafficPhase(1.0),), 0, seed=0)

    def test_phases_required(self, iwslt):
        with pytest.raises(ConfigurationError, match="phase"):
            sample_requests(iwslt, (), 10, seed=0)

    def test_empty_quantile_window_is_an_error(self, iwslt):
        # A window between two adjacent quantiles of a discrete length
        # distribution can select nothing; that must fail loudly.
        narrow = (TrafficPhase(1.0, 0.5001, 0.5002),)
        try:
            requests = sample_requests(iwslt, narrow, 8, seed=0)
        except ConfigurationError as exc:
            assert "selects no corpus samples" in str(exc)
        else:  # the window happened to straddle a mass point
            assert len(requests) == 8
