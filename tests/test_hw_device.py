"""Unit tests for repro.hw.device."""

import pytest

from repro.hw.cache import TrafficProfile
from repro.hw.compute import ComputeProfile
from repro.hw.device import GpuDevice
from repro.hw.config import paper_config
from repro.hw.timing import WorkProfile, time_work


def work() -> WorkProfile:
    return WorkProfile(
        compute=ComputeProfile(flops=1e9, work_items=1 << 16),
        traffic=TrafficProfile(read_bytes=1e7, write_bytes=1e6),
    )


class TestGpuDevice:
    def test_matches_raw_timing(self, device1):
        measurement = device1.run(work())
        expected, _, _ = time_work(work(), paper_config(1))
        assert measurement.time_s == pytest.approx(expected)

    def test_memoised(self, device1):
        first = device1.run(work())
        second = device1.run(work())
        assert first is second

    def test_devices_do_not_share_cache(self):
        fast = GpuDevice(paper_config(1))
        slow = GpuDevice(paper_config(2))
        assert slow.run(work()).time_s > fast.run(work()).time_s

    def test_repr_includes_config(self, device1):
        assert "config#1" in repr(device1)

    def test_measurement_has_counters_and_breakdown(self, device1):
        measurement = device1.run(work())
        assert measurement.counters.busy_cycles > 0
        assert measurement.breakdown.total_s == pytest.approx(measurement.time_s)
