"""Unit tests for repro.hw.device."""

from dataclasses import replace

import pytest

from repro.hw.cache import TrafficProfile
from repro.hw.compute import ComputeProfile
from repro.hw.device import (
    GpuDevice,
    clear_measure_caches,
    measure_cache_info,
)
from repro.hw.config import VEGA_FE, paper_config
from repro.hw.timing import WorkProfile, time_work


def work() -> WorkProfile:
    return WorkProfile(
        compute=ComputeProfile(flops=1e9, work_items=1 << 16),
        traffic=TrafficProfile(read_bytes=1e7, write_bytes=1e6),
    )


class TestGpuDevice:
    def test_matches_raw_timing(self, device1):
        measurement = device1.run(work())
        expected, _, _ = time_work(work(), paper_config(1))
        assert measurement.time_s == pytest.approx(expected)

    def test_memoised(self, device1):
        first = device1.run(work())
        second = device1.run(work())
        assert first is second

    def test_devices_do_not_share_cache(self):
        fast = GpuDevice(paper_config(1))
        slow = GpuDevice(paper_config(2))
        assert slow.run(work()).time_s > fast.run(work()).time_s

    def test_repr_includes_config(self, device1):
        assert "config#1" in repr(device1)

    def test_measurement_has_counters_and_breakdown(self, device1):
        measurement = device1.run(work())
        assert measurement.counters.busy_cycles > 0
        assert measurement.breakdown.total_s == pytest.approx(measurement.time_s)


class TestSharedMeasurementStore:
    """Devices with *equal* configs share one measurement memo.

    Sweeps construct a fresh :class:`GpuDevice` per grid point; without
    sharing, every device re-times every kernel.  Unique config names
    keep these tests isolated from the session fixtures.
    """

    def test_equal_configs_share_measurements(self):
        config = replace(VEGA_FE, name="shared-store-test")
        first = GpuDevice(config)
        second = GpuDevice(replace(VEGA_FE, name="shared-store-test"))
        before = measure_cache_info(config)
        assert first.run(work()) is second.run(work())
        after = measure_cache_info(config)
        # One compute (the first device's miss), then a shared hit.
        assert after.misses == before.misses + 1
        assert after.hits == before.hits + 1

    def test_distinct_configs_never_share(self):
        fast = GpuDevice(replace(VEGA_FE, name="store-iso-a"))
        slow = GpuDevice(
            replace(VEGA_FE, name="store-iso-b", gclk_hz=VEGA_FE.gclk_hz / 2)
        )
        fast.run(work())
        info = measure_cache_info(slow.config)
        assert info.hits == 0 and info.misses == 0
        slow.run(work())
        assert measure_cache_info(slow.config).misses == 1

    def test_many_devices_one_timing_per_kernel(self):
        config = replace(VEGA_FE, name="shared-store-fleet")
        devices = [GpuDevice(replace(VEGA_FE, name="shared-store-fleet"))
                   for _ in range(8)]
        results = {id(device.run(work())) for device in devices}
        assert len(results) == 1
        info = measure_cache_info(config)
        assert info.misses == 1
        assert info.hits == len(devices) - 1

    def test_clear_measure_caches_resets_counters(self):
        config = replace(VEGA_FE, name="shared-store-clear")
        GpuDevice(config).run(work())
        assert measure_cache_info(config).misses == 1
        clear_measure_caches()
        assert measure_cache_info(config).misses == 0

    def test_clear_flushes_stores_of_live_devices_in_place(self):
        """Clearing must reach devices created *before* the clear: the
        flush happens in the store they hold, so their next run is a
        real miss and the shared counters keep describing their store."""
        config = replace(VEGA_FE, name="shared-store-live")
        device = GpuDevice(config)
        device.run(work())
        clear_measure_caches()
        assert measure_cache_info(config).currsize == 0
        device.run(work())
        info = measure_cache_info(config)
        assert info.misses == 1 and info.currsize == 1
