"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.binning import bin_stats, bin_stats_equal_mass
from repro.core.projection import project_total
from repro.core.selection import select_from_bin
from repro.core.seqpoint import SeqPointSelector
from repro.core.sl_stats import SlStatistics
from repro.hw.cache import TrafficProfile, capacity_factor, resolve_traffic
from repro.hw.compute import ComputeProfile, parallel_efficiency
from repro.hw.config import paper_config
from repro.hw.timing import WorkProfile, time_work
from repro.util.stats import geomean, weighted_average, weighted_sum
from tests.conftest import make_trace

# ---- strategy helpers -------------------------------------------------

sl_time_pairs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=1e-4, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)

positive_floats = st.floats(min_value=1e-6, max_value=1e9, allow_nan=False)


# ---- util invariants --------------------------------------------------


@given(
    st.lists(positive_floats, min_size=1, max_size=20),
    st.lists(positive_floats, min_size=1, max_size=20),
)
def test_weighted_average_bounded_by_extremes(values, weights):
    n = min(len(values), len(weights))
    values, weights = values[:n], weights[:n]
    average = weighted_average(values, weights)
    low, high = min(values), max(values)
    assert low * (1 - 1e-9) - 1e-9 <= average <= high * (1 + 1e-9) + 1e-9


@given(st.lists(st.floats(min_value=1e-6, max_value=1e6), min_size=1, max_size=20))
def test_geomean_bounded_by_extremes(values):
    g = geomean(values)
    assert min(values) * 0.999 <= g <= max(values) * 1.001


@given(
    st.lists(positive_floats, min_size=1, max_size=10),
    positive_floats,
)
def test_weighted_sum_scales_linearly(values, factor):
    weights = [1.0] * len(values)
    assert weighted_sum([v * factor for v in values], weights) == (
        math.inf if False else math.fsum(values) * factor
    ) or abs(
        weighted_sum([v * factor for v in values], weights)
        - sum(values) * factor
    ) <= 1e-6 * max(1.0, sum(values) * factor)


# ---- binning invariants ------------------------------------------------


@given(sl_time_pairs, st.integers(min_value=1, max_value=30))
@settings(max_examples=60)
def test_bins_partition_statistics(pairs, k):
    statistics = SlStatistics.from_trace(make_trace(pairs))
    for binning in (bin_stats, bin_stats_equal_mass):
        bins = binning(statistics, k)
        covered = sorted(s.seq_len for b in bins for s in b.stats)
        assert covered == sorted(s.seq_len for s in statistics)
        # Iteration mass is conserved exactly.
        assert sum(b.iterations for b in bins) == statistics.total_iterations


@given(sl_time_pairs, st.integers(min_value=1, max_value=30))
@settings(max_examples=60)
def test_bins_are_contiguous_in_sl(pairs, k):
    statistics = SlStatistics.from_trace(make_trace(pairs))
    bins = bin_stats(statistics, k)
    for earlier, later in zip(bins, bins[1:]):
        assert max(earlier.seq_lens) < min(later.seq_lens)


@given(sl_time_pairs, st.integers(min_value=1, max_value=20))
@settings(max_examples=60)
def test_representative_always_member_of_bin(pairs, k):
    statistics = SlStatistics.from_trace(make_trace(pairs))
    for bin_ in bin_stats(statistics, k):
        point = select_from_bin(bin_)
        assert point.seq_len in bin_.seq_lens
        assert point.weight == bin_.iterations


@given(sl_time_pairs)
@settings(max_examples=60)
def test_sl_statistics_totals_equal_raw_sums(pairs):
    """Group-by totals are exactly the raw per-iteration sums.

    Bit-exact, not approximate: the vectorized bincount accumulates in
    array order, the same addition sequence as a sequential scan.
    """
    statistics = SlStatistics.from_trace(make_trace(pairs))
    by_sl = {}
    for seq_len, time_s in pairs:
        by_sl[seq_len] = by_sl.get(seq_len, 0.0) + time_s
    counts = {}
    for seq_len, _ in pairs:
        counts[seq_len] = counts.get(seq_len, 0) + 1
    assert [s.seq_len for s in statistics] == sorted(by_sl)
    for stat in statistics:
        assert stat.total_time_s == by_sl[stat.seq_len]
        assert stat.iterations == counts[stat.seq_len]
        assert stat.mean_time_s == by_sl[stat.seq_len] / counts[stat.seq_len]
    assert statistics.total_iterations == len(pairs)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=500),
            st.floats(min_value=1e-4, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
        unique_by=lambda pair: pair[0],  # every SL appears exactly once
    )
)
@settings(max_examples=60)
def test_projection_exact_when_every_sl_is_its_own_bin(pairs):
    """With one point per unique SL the projection is the epoch itself."""
    trace = make_trace(pairs)
    result = SeqPointSelector(max_unique=len(pairs)).select(trace)
    assert result.k == 0  # the no-binning path: every SL its own point
    assert result.identification_error_pct <= 1e-9
    assert result.projected_total_s == (
        math.fsum(t for _, t in pairs)
    ) or abs(result.projected_total_s - result.actual_total_s) <= 1e-12 * max(
        1.0, result.actual_total_s
    )


# ---- seqpoint invariants ----------------------------------------------


@given(sl_time_pairs)
@settings(max_examples=40)
def test_seqpoint_weights_cover_epoch(pairs):
    trace = make_trace(pairs)
    result = SeqPointSelector().select(trace)
    assert result.selection.total_weight == len(trace.records)


@given(sl_time_pairs)
@settings(max_examples=40)
def test_seqpoint_projection_bounded_by_extreme_iterations(pairs):
    trace = make_trace(pairs)
    result = SeqPointSelector().select(trace)
    projected = project_total(result.selection, lambda p: p.record.time_s)
    times = [r.time_s for r in trace.records]
    n = len(times)
    assert min(times) * n * 0.999 <= projected <= max(times) * n * 1.001


@given(sl_time_pairs)
@settings(max_examples=40)
def test_seqpoints_never_exceed_unique_sls(pairs):
    trace = make_trace(pairs)
    result = SeqPointSelector().select(trace)
    assert len(result.selection) <= len(set(trace.seq_lens()))


# ---- hardware model invariants ----------------------------------------


@given(
    st.floats(min_value=0.0, max_value=1e9),
    st.floats(min_value=0.0, max_value=1e9),
)
def test_capacity_factor_bounded(working_set, capacity):
    factor = capacity_factor(working_set, capacity)
    assert 0.0 <= factor <= 1.0


@given(
    st.floats(min_value=1.0, max_value=1e12),
    st.floats(min_value=0.0, max_value=1e10),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1e9),
)
@settings(max_examples=80)
def test_traffic_conservation(read_bytes, write_bytes, reuse, working_set):
    profile = TrafficProfile(
        read_bytes=read_bytes,
        write_bytes=write_bytes,
        l1_reuse_fraction=reuse,
        l1_working_set=working_set,
        l2_reuse_fraction=reuse / 2,
        l2_working_set=working_set * 4,
    )
    for index in (1, 4, 5):
        resolved = resolve_traffic(profile, paper_config(index))
        # Traffic can only shrink down the hierarchy.
        assert resolved.dram_read_bytes <= resolved.l2_read_bytes + 1e-6
        assert resolved.l2_read_bytes <= resolved.l1_read_bytes + 1e-6
        assert resolved.dram_write_bytes == write_bytes


@given(
    st.floats(min_value=1e3, max_value=1e13),
    st.integers(min_value=64, max_value=1 << 24),
)
@settings(max_examples=80)
def test_kernel_time_positive_and_latency_monotone_in_clock(flops, work_items):
    work = WorkProfile(
        compute=ComputeProfile(flops=flops, work_items=work_items),
        traffic=TrafficProfile(read_bytes=flops / 10, write_bytes=flops / 100),
    )
    fast, _, _ = time_work(work, paper_config(1))
    slow, _, _ = time_work(work, paper_config(2))
    assert fast > 0
    assert slow >= fast * 0.999  # lower clock can never be faster


@given(st.integers(min_value=1, max_value=1 << 22))
@settings(max_examples=80)
def test_parallel_efficiency_bounded(work_items):
    profile = ComputeProfile(flops=1.0, work_items=work_items)
    for index in (1, 3):
        eff = parallel_efficiency(profile, paper_config(index))
        assert 0.0 < eff <= 1.0
