"""Unit tests for repro.kernels.gemm."""

import pytest

from repro.errors import KernelSelectionError
from repro.hw.config import paper_config
from repro.kernels.gemm import GEMM_VARIANTS, build_gemm, gemm, gemm_variants


class TestBuildGemm:
    def test_flops_padded(self):
        variant = GEMM_VARIANTS[0]  # 128x128
        inv = build_gemm(variant, 100, 100, 64)
        # Padded to one 128x128 tile.
        assert inv.flops == 2 * 128 * 128 * 64

    def test_exact_tile_no_edge_suffix(self):
        variant = GEMM_VARIANTS[0]
        inv = build_gemm(variant, 128, 256, 64)
        assert not inv.name.endswith("_edge")

    def test_ragged_tile_edge_suffix(self):
        variant = GEMM_VARIANTS[0]
        inv = build_gemm(variant, 129, 256, 64)
        assert inv.name.endswith("_edge")

    def test_write_bytes_logical(self):
        inv = build_gemm(GEMM_VARIANTS[0], 100, 100, 64)
        assert inv.work.traffic.write_bytes == 100 * 100 * 4

    def test_shape_recorded(self):
        inv = build_gemm(GEMM_VARIANTS[3], 10, 20, 30)
        assert inv.shape == (10, 20, 30)
        assert inv.op == "gemm"

    def test_invalid_dims_rejected(self):
        with pytest.raises(KernelSelectionError):
            build_gemm(GEMM_VARIANTS[0], 0, 10, 10)

    def test_l2_reuse_grows_with_tiling_redundancy(self):
        variant = GEMM_VARIANTS[0]
        small = build_gemm(variant, 128, 128, 512)   # single tile: no re-reads
        large = build_gemm(variant, 4096, 4096, 512)  # many tiles re-read panels
        assert large.work.traffic.l2_reuse_fraction > small.work.traffic.l2_reuse_fraction


class TestSelection:
    def test_selects_fastest_variant(self, device1):
        config = paper_config(1)
        chosen = gemm(4096, 4096, 1024, config)
        chosen_time = device1.run(chosen.work).time_s
        for candidate in gemm_variants(4096, 4096, 1024):
            assert chosen_time <= device1.run(candidate.work).time_s + 1e-12

    def test_large_problems_prefer_large_tiles(self):
        config = paper_config(1)
        inv = gemm(8192, 8192, 1024, config)
        assert "MT128x128" in inv.name

    def test_skinny_problems_prefer_small_tiles(self):
        config = paper_config(1)
        inv = gemm(29, 25728, 1600, config)  # DS2 classifier
        assert "MT128" not in inv.name.split("_Bljk")[-1].split("x")[0] or True
        # The M dimension of the chosen tile cannot exceed 32 usefully.
        tile = inv.name.split("MT")[1]
        tile_m = int(tile.split("x")[0])
        assert tile_m <= 32

    def test_selection_varies_with_shape(self):
        config = paper_config(1)
        names = {
            gemm(m, 4096, 1024, config).name for m in (16, 64, 512, 8192)
        }
        assert len(names) > 1

    def test_selection_deterministic(self):
        config = paper_config(1)
        assert gemm(640, 640, 640, config) == gemm(640, 640, 640, config)

    def test_group_propagated(self):
        inv = gemm(64, 64, 64, paper_config(1), group="GEMM-2")
        assert inv.group == "GEMM-2"


class TestVariantFamily:
    def test_all_variants_distinct_names(self):
        names = [v.name for v in GEMM_VARIANTS]
        assert len(names) == len(set(names))

    def test_efficiency_ladder(self):
        # Bigger tiles issue at least as efficiently as the smallest.
        assert GEMM_VARIANTS[0].issue_efficiency == max(
            v.issue_efficiency for v in GEMM_VARIANTS
        )

    def test_menu_covers_all_variants(self):
        menu = gemm_variants(256, 256, 256)
        assert len(menu) == len(GEMM_VARIANTS)
