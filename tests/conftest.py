"""Shared test fixtures.

``make_record``/``make_trace`` build synthetic traces so the core
methodology is testable without simulating a network; the device and
model fixtures cover the substrate tests.  Everything is deterministic.
"""

from __future__ import annotations

import pytest

from repro.hw.config import paper_config
from repro.hw.counters import CounterSet
from repro.hw.device import GpuDevice
from repro.train.trace import IterationRecord, TrainingTrace


@pytest.fixture(scope="session")
def device1() -> GpuDevice:
    """The baseline device (paper config #1)."""
    return GpuDevice(paper_config(1))


@pytest.fixture(scope="session")
def devices() -> dict[int, GpuDevice]:
    """All five Table II devices."""
    return {index: GpuDevice(paper_config(index)) for index in range(1, 6)}


def make_record(
    index: int,
    seq_len: int,
    time_s: float,
    tgt_len: int | None = None,
    epoch: int = 0,
    group_times: dict[str, float] | None = None,
    kernel_names: frozenset[str] = frozenset({"k"}),
) -> IterationRecord:
    """A minimal synthetic iteration record."""
    return IterationRecord(
        index=index,
        epoch=epoch,
        seq_len=seq_len,
        tgt_len=tgt_len,
        time_s=time_s,
        launches=1,
        counters=CounterSet(busy_cycles=time_s * 1.6e9),
        group_times=group_times if group_times is not None else {"GEMM-1": time_s},
        kernel_names=kernel_names,
    )


def make_trace(
    seq_len_times: list[tuple[int, float]],
    model_name: str = "toy",
    config_name: str = "config#1",
    batch_size: int = 64,
) -> TrainingTrace:
    """A synthetic trace from (seq_len, time_s) pairs, in order."""
    trace = TrainingTrace(
        model_name=model_name,
        dataset_name="synthetic",
        config_name=config_name,
        batch_size=batch_size,
    )
    for index, (seq_len, time_s) in enumerate(seq_len_times):
        trace.records.append(make_record(index, seq_len, time_s))
    return trace


@pytest.fixture
def linear_trace() -> TrainingTrace:
    """Iterations whose runtime is exactly linear in SL (10..100)."""
    pairs = []
    for seq_len in range(10, 101, 10):
        for _ in range(5):
            pairs.append((seq_len, 0.01 * seq_len + 0.1))
    return make_trace(pairs)
