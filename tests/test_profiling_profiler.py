"""Unit tests for repro.profiling.profiler."""

import pytest

from repro.models.ds2 import build_ds2
from repro.models.spec import IterationInputs
from repro.profiling.profiler import Profiler
from repro.train.iteration import IterationExecutor


class TestProfiler:
    def test_profile_matches_execution_time(self, device1):
        model = build_ds2()
        profiler = Profiler(model, device1)
        executor = IterationExecutor(model, device1, host_overhead_s=0.0)
        inputs = IterationInputs(64, 300)
        profiled = profiler.profile_iteration(inputs)
        executed = executor.run(inputs)
        assert profiled.time_s == pytest.approx(executed.time_s)

    def test_profile_covers_all_launches(self, device1):
        profiler = Profiler(build_ds2(), device1)
        profiled = profiler.profile_seq_len(200, batch=64)
        executor = IterationExecutor(build_ds2(), device1)
        assert profiled.profile.total_launches == executor.run(
            IterationInputs(64, 200)
        ).launches

    def test_mean_counters_per_kernel(self, device1):
        profiler = Profiler(build_ds2(), device1)
        means = profiler.profile_seq_len(200, batch=64).mean_counters_per_kernel()
        assert means["valu_insts"] > 0
        assert means["busy_cycles"] > 0

    def test_profiling_cost_applies_overhead(self, device1):
        profiler = Profiler(build_ds2(), device1, overhead_multiplier=10.0)
        profiles = [profiler.profile_seq_len(100, batch=64)]
        assert profiler.profiling_cost_s(profiles) == pytest.approx(
            profiles[0].time_s * 10.0
        )

    def test_overhead_below_one_rejected(self, device1):
        with pytest.raises(ValueError):
            Profiler(build_ds2(), device1, overhead_multiplier=0.5)
