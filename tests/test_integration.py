"""End-to-end integration tests: the full SeqPoint workflow.

Simulate an identification epoch on config #1, identify SeqPoints,
project training time and speedups on the other Table II configs, and
verify the headline properties of the paper hold on a small corpus.
"""

import pytest

from repro.core.baselines import FrequentSelector, WorstSelector
from repro.core.projection import (
    project_epoch_time,
    project_throughput,
    project_uplift_pct,
    uplift_pct,
)
from repro.core.seqpoint import SeqPointSelector
from repro.data.batching import PooledBucketing, SortedBatching
from repro.data.iwslt import build_iwslt
from repro.data.librispeech import build_librispeech
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.models.ds2 import build_ds2
from repro.models.gnmt import build_gnmt
from repro.train.runner import TrainingRunSimulator
from repro.util.stats import percent_error


@pytest.fixture(scope="module")
def gnmt_setup():
    corpus = build_iwslt(sentences=3200)
    model = build_gnmt()
    runners = {
        index: TrainingRunSimulator(
            model, corpus, PooledBucketing(64), GpuDevice(paper_config(index))
        )
        for index in (1, 2, 3)
    }
    traces = {
        index: sim.run_epoch(include_eval=False) for index, sim in runners.items()
    }
    return runners, traces


class TestEndToEndGnmt:
    def test_identification_meets_threshold(self, gnmt_setup):
        _, traces = gnmt_setup
        result = SeqPointSelector().select(traces[1])
        assert result.identification_error_pct < 1.0

    def test_cross_config_time_projection(self, gnmt_setup):
        runners, traces = gnmt_setup
        selection = SeqPointSelector().select(traces[1]).selection
        for index in (2, 3):
            projected = project_epoch_time(selection, runners[index])
            error = percent_error(projected, traces[index].total_time_s)
            assert error < 2.0, f"config {index}: {error}%"

    def test_speedup_projection(self, gnmt_setup):
        runners, traces = gnmt_setup
        selection = SeqPointSelector().select(traces[1]).selection
        for index in (2, 3):
            actual = uplift_pct(traces[index].throughput, traces[1].throughput)
            projected = project_uplift_pct(selection, runners[index], runners[1])
            assert abs(projected - actual) < 2.0

    def test_seqpoint_beats_single_iteration_baselines(self, gnmt_setup):
        runners, traces = gnmt_setup
        seqpoint = SeqPointSelector().select(traces[1]).selection
        actual = traces[1].total_time_s

        def error_of(selection):
            return percent_error(project_epoch_time(selection, runners[1]), actual)

        assert error_of(seqpoint) < error_of(FrequentSelector().select(traces[1]))
        assert error_of(seqpoint) < error_of(WorstSelector().select(traces[1]))

    def test_throughput_projection_consistent(self, gnmt_setup):
        runners, traces = gnmt_setup
        selection = SeqPointSelector().select(traces[1]).selection
        projected = project_throughput(selection, runners[1])
        assert projected == pytest.approx(traces[1].throughput, rel=0.02)


class TestEndToEndDs2:
    def test_sorted_epoch_identification_and_projection(self):
        corpus = build_librispeech(utterances=3200)
        model = build_ds2()
        base = TrainingRunSimulator(
            model, corpus, SortedBatching(64, pad_multiple=4),
            GpuDevice(paper_config(1)),
        )
        other = TrainingRunSimulator(
            model, corpus, SortedBatching(64, pad_multiple=4),
            GpuDevice(paper_config(5)),
        )
        trace1 = base.run_epoch(include_eval=False)
        trace5 = other.run_epoch(include_eval=False)

        result = SeqPointSelector().select(trace1)
        assert len(result.selection) < len(trace1.unique_seq_lens())

        projected = project_epoch_time(result.selection, other)
        assert percent_error(projected, trace5.total_time_s) < 2.0

    def test_trace_round_trip_preserves_selection(self, tmp_path):
        corpus = build_librispeech(utterances=1600)
        sim = TrainingRunSimulator(
            build_ds2(), corpus, SortedBatching(64, pad_multiple=4),
            GpuDevice(paper_config(1)),
        )
        trace = sim.run_epoch(include_eval=False)
        path = tmp_path / "trace.json"
        trace.save(path)

        from repro.train.trace import TrainingTrace

        reloaded = TrainingTrace.load(path)
        original = SeqPointSelector().select(trace)
        restored = SeqPointSelector().select(reloaded)
        assert original.selection.seq_lens == restored.selection.seq_lens
        assert original.k == restored.k
