"""Unit tests for the incremental per-SL accumulator."""

import numpy as np
import pytest

from repro.core.sl_stats import SlStatistics
from repro.errors import TraceError
from repro.stream import StreamingSlStatistics
from repro.train.frame import TraceFrame
from tests.conftest import make_record, make_trace

PAIRS = [
    (20, 0.20), (10, 0.11), (20, 0.22), (30, 0.29), (10, 0.10),
    (20, 0.21), (30, 0.31), (10, 0.12), (30, 0.30), (20, 0.19),
]


@pytest.fixture
def frame() -> TraceFrame:
    return make_trace(PAIRS).frame()


class TestAbsorb:
    def test_record_by_record_matches_batch(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        for record in make_trace(PAIRS).records:
            stats.absorb(record)
        assert stats.statistics() == SlStatistics.from_trace(frame)

    def test_absorb_many_matches_batch(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        stats.absorb_many(make_trace(PAIRS).records)
        assert stats.statistics() == SlStatistics.from_trace(frame)

    def test_frame_chunks_match_batch(self, frame):
        for chunk in (1, 3, 4, len(frame)):
            stats = StreamingSlStatistics.for_frame(frame)
            for start in range(0, len(frame), chunk):
                stats.absorb_frame(frame, start, min(start + chunk, len(frame)))
            assert stats.statistics() == SlStatistics.from_trace(frame)

    def test_mixed_record_and_frame_absorbs(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        stats.absorb_many(make_trace(PAIRS).records[:4])
        stats.absorb_frame(frame, 4, len(frame))
        assert stats.statistics() == SlStatistics.from_trace(frame)

    def test_prefix_matches_batch_of_prefix(self, frame):
        trace = make_trace(PAIRS)
        for m in (1, 4, 7):
            stats = StreamingSlStatistics.for_frame(frame)
            stats.absorb_frame(frame, 0, m)
            prefix = TraceFrame.from_records(
                "toy", "synthetic", "config#1", 64, trace.records[:m]
            )
            assert stats.statistics() == SlStatistics.from_trace(prefix)

    def test_accounting(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        stats.absorb_frame(frame, 0, len(frame))
        assert len(stats) == stats.iterations == len(PAIRS)
        assert stats.unique_seq_lens == 3
        assert stats.total_time_s == pytest.approx(sum(t for _, t in PAIRS))
        means = stats.mean_times()
        assert set(means) == {10, 20, 30}
        assert means[10] == pytest.approx((0.11 + 0.10 + 0.12) / 3)


class TestValidation:
    def test_empty_frame_snapshot_rejected(self):
        stats = StreamingSlStatistics()
        with pytest.raises(TraceError, match="no iterations"):
            stats.frame()

    def test_non_positive_time_rejected(self):
        stats = StreamingSlStatistics()
        bad = make_record(0, 10, 1.0)
        object.__setattr__(bad, "time_s", -1.0)
        with pytest.raises(TraceError, match="non-positive"):
            stats.absorb(bad)

    def test_bad_chunk_bounds_rejected(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        with pytest.raises(TraceError, match="outside"):
            stats.absorb_frame(frame, 5, len(frame) + 1)
        with pytest.raises(TraceError, match="outside"):
            stats.absorb_frame(frame, -1, 2)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(TraceError, match="batch_size"):
            StreamingSlStatistics(batch_size=0)

    def test_empty_chunk_is_a_noop(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        stats.absorb_frame(frame, 3, 3)
        assert len(stats) == 0


class TestSnapshots:
    def test_frame_memoised_until_growth(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        stats.absorb_frame(frame, 0, 5)
        first = stats.frame()
        assert stats.frame() is first
        stats.absorb_frame(frame, 5, 6)
        assert stats.frame() is not first
        assert len(first) == 5  # the old snapshot is untouched

    def test_statistics_seed_the_frame_memo(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        stats.absorb_frame(frame, 0, len(frame))
        snapshot = stats.statistics()
        # Selectors calling the batch entry point on the streamed frame
        # must reuse the incremental group-by, not recompute it.
        assert SlStatistics.from_trace(stats.frame()) is snapshot

    def test_for_frame_copies_metadata(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        stats.absorb_frame(frame, 0, 2)
        prefix = stats.frame()
        assert prefix.model_name == frame.model_name
        assert prefix.dataset_name == frame.dataset_name
        assert prefix.config_name == frame.config_name
        assert prefix.batch_size == frame.batch_size

    def test_profiles_pool_deduplicates(self, frame):
        stats = StreamingSlStatistics.for_frame(frame)
        stats.absorb_frame(frame, 0, len(frame))
        # conftest's make_record keys group_times by runtime, so equal
        # profiles pool; the streamed pool must match the source one.
        assert len(stats.frame().profiles) == len(frame.profiles)

    def test_tgt_len_round_trips(self):
        records = [
            make_record(0, 10, 0.1, tgt_len=12),
            make_record(1, 20, 0.2, tgt_len=None),
            make_record(2, 10, 0.15, tgt_len=12),
        ]
        stats = StreamingSlStatistics()
        stats.absorb_many(records)
        prefix = stats.frame()
        assert prefix.tgt_len_at(0) == 12
        assert prefix.tgt_len_at(1) is None

    def test_growable_column_doubles_past_initial_capacity(self):
        stats = StreamingSlStatistics()
        records = [make_record(i, 10 + i % 5, 0.1 + i * 1e-4) for i in range(300)]
        stats.absorb_many(records)
        assert len(stats) == 300
        assert np.array_equal(
            stats.frame().index, np.arange(300, dtype=np.int64)
        )
