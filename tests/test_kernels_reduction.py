"""Unit tests for repro.kernels.reduction."""

import pytest

from repro.kernels.reduction import reduction


class TestReduction:
    def test_reads_full_input(self):
        inv = reduction("sum", rows=10, span=1000)
        assert inv.work.traffic.read_bytes == 10 * 1000 * 4

    def test_writes_one_per_row(self):
        inv = reduction("sum", rows=10, span=1000)
        assert inv.work.traffic.write_bytes == 10 * 4

    def test_variant_by_span(self):
        assert reduction("sum", 1, 64).name.endswith("warp")
        assert reduction("sum", 1, 200).name.endswith("wg128")
        assert reduction("sum", 1, 1 << 9).name.endswith("wg256")
        assert reduction("sum", 1, 1 << 12).name.endswith("wg512")
        assert reduction("sum", 1, 1 << 15).name.endswith("multipass")

    def test_span_classes_are_distinct_kernels(self):
        # The Fig 5 mechanism: span crossing a class boundary changes
        # the dispatched kernel name.
        assert reduction("sum", 4, 120).name != reduction("sum", 4, 130).name

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            reduction("sum", 0, 10)
        with pytest.raises(ValueError):
            reduction("sum", 10, 0)

    def test_group_default(self):
        assert reduction("sum", 1, 1).group == "reduce"
