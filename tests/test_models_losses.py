"""Unit tests for the loss layers."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.config import paper_config
from repro.models.layers.losses import CTCLossLayer, SoftmaxCrossEntropyLayer

CONFIG = paper_config(1)


class TestSoftmaxCrossEntropy:
    def test_vocab_dominates_traffic(self, device1):
        # Key Observation 6: vocabulary size drives loss-layer cost.
        small = SoftmaxCrossEntropyLayer("ce", vocab=1000)
        large = SoftmaxCrossEntropyLayer("ce", vocab=36549)

        def total(layer):
            return sum(
                device1.run(inv.work).time_s * count
                for inv, count in layer.forward(64, 20, CONFIG)
            )

        assert total(large) > 10 * total(small)

    def test_reduction_span_is_vocab(self):
        layer = SoftmaxCrossEntropyLayer("ce", vocab=5000)
        spans = [
            inv.shape[1] for inv, _ in layer.forward(8, 4, CONFIG)
            if inv.op in ("softmax_max", "softmax_sum")
        ]
        assert spans == [5000, 5000]

    def test_backward_single_gradient_kernel(self):
        layer = SoftmaxCrossEntropyLayer("ce", vocab=100)
        kernels = list(layer.backward(8, 4, CONFIG))
        assert len(kernels) == 1
        assert kernels[0][0].op == "softmax_grad"

    def test_invalid_vocab_rejected(self):
        with pytest.raises(ConfigurationError):
            SoftmaxCrossEntropyLayer("ce", vocab=0)


class TestCTCLoss:
    def test_alpha_beta_per_step(self):
        layer = CTCLossLayer("ctc", alphabet=29)
        per_step = [
            (inv.op, count) for inv, count in layer.forward(64, 40, CONFIG)
            if inv.op in ("ctc_alpha", "ctc_beta")
        ]
        assert per_step == [("ctc_alpha", 40), ("ctc_beta", 40)]

    def test_lattice_width_scales_with_steps(self):
        layer = CTCLossLayer("ctc", alphabet=29)
        assert layer._lattice_width(100) > layer._lattice_width(20)

    def test_alphabet_in_softmax(self):
        layer = CTCLossLayer("ctc", alphabet=29)
        span = next(
            inv.shape[1] for inv, _ in layer.forward(8, 10, CONFIG)
            if inv.op == "ctc_softmax"
        )
        assert span == 29

    def test_invalid_alphabet_rejected(self):
        with pytest.raises(ConfigurationError):
            CTCLossLayer("ctc", alphabet=-1)
