"""Unit tests for the service wire protocol: envelopes and parsing."""

import pytest

from repro.api.parallel import SweepSpec
from repro.api.spec import AnalysisSpec, ProjectionSpec
from repro.errors import ConfigurationError, ReproError
from repro.serve.protocol import (
    JOB_KINDS,
    PROTOCOL_VERSION,
    NotFoundError,
    ProtocolError,
    error_envelope,
    error_status,
    ok_envelope,
    one_line,
    parse_job_submission,
    parse_records,
    parse_stream_open,
)
from repro.stream.spec import StreamSpec
from repro.traffic.spec import TrafficSpec

ANALYSIS = AnalysisSpec(network="gnmt", scale=0.02).to_dict()
SWEEP = SweepSpec(networks=("gnmt",), scales=(0.02,)).to_dict()
STREAM = StreamSpec(analysis=AnalysisSpec(network="gnmt", scale=0.02)).to_dict()
TRAFFIC = TrafficSpec(
    analysis=AnalysisSpec(network="gnmt", scale=0.02), requests=64
).to_dict()


class TestEnvelopes:
    def test_ok_envelope_merges_payload(self):
        envelope = ok_envelope({"job": {"id": "job-1"}})
        assert envelope == {
            "v": PROTOCOL_VERSION, "ok": True, "job": {"id": "job-1"},
        }

    def test_ok_envelope_empty(self):
        assert ok_envelope() == {"v": PROTOCOL_VERSION, "ok": True}

    def test_error_envelope_is_structured_and_one_line(self):
        envelope = error_envelope(ConfigurationError("bad\n  spec\tfield"))
        assert envelope["v"] == PROTOCOL_VERSION
        assert envelope["ok"] is False
        assert envelope["error"] == {
            "type": "ConfigurationError", "message": "bad spec field",
        }
        assert "\n" not in envelope["error"]["message"]

    def test_one_line_collapses_whitespace(self):
        assert one_line("a\nb\t c  d") == "a b c d"
        assert one_line("") == "unknown error"

    @pytest.mark.parametrize(
        ("exc", "status"),
        [
            (NotFoundError("gone"), 404),
            (ProtocolError("bad"), 400),
            (ConfigurationError("bad"), 400),
            (ReproError("bad"), 400),
            (RuntimeError("bug"), 500),
        ],
    )
    def test_error_status_mapping(self, exc, status):
        assert error_status(exc) == status


class TestParseJobSubmission:
    def test_analyze_round_trips_the_spec(self):
        request = parse_job_submission({"kind": "analyze", "spec": ANALYSIS})
        assert request.kind == "analyze"
        assert request.spec == AnalysisSpec.from_dict(ANALYSIS)
        assert request.projection is None
        assert "gnmt" in request.describe()

    def test_analyze_with_projection(self):
        request = parse_job_submission(
            {
                "kind": "analyze",
                "spec": ANALYSIS,
                "projection": {"targets": [1, 3]},
            }
        )
        assert request.projection == ProjectionSpec(targets=(1, 3))

    def test_sweep_with_mode_and_workers(self):
        request = parse_job_submission(
            {"kind": "sweep", "spec": SWEEP, "mode": "serial", "workers": 2}
        )
        assert request.kind == "sweep"
        assert request.spec == SweepSpec.from_dict(SWEEP)
        assert request.mode == "serial"
        assert request.workers == 2
        assert "points" in request.describe()

    def test_stream(self):
        request = parse_job_submission({"kind": "stream", "spec": STREAM})
        assert request.kind == "stream"
        assert request.spec == StreamSpec.from_dict(STREAM)

    @pytest.mark.parametrize("payload", [None, [], "analyze", 7])
    def test_non_object_payload_rejected(self, payload):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_job_submission(payload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job kind"):
            parse_job_submission({"kind": "bogus", "spec": ANALYSIS})
        assert "analyze" in str(JOB_KINDS)

    def test_missing_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job kind"):
            parse_job_submission({"spec": ANALYSIS})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job fields: extra"):
            parse_job_submission(
                {"kind": "analyze", "spec": ANALYSIS, "extra": 1}
            )

    def test_missing_spec_rejected(self):
        with pytest.raises(ProtocolError, match="spec must be a JSON object"):
            parse_job_submission({"kind": "analyze"})

    def test_traffic_job_parses_its_spec(self):
        request = parse_job_submission({"kind": "traffic", "spec": TRAFFIC})
        assert request.kind == "traffic"
        assert request.spec == TrafficSpec.from_dict(TRAFFIC)
        assert request.describe() == "traffic gnmt (64 requests)"

    def test_traffic_kind_registered(self):
        assert "traffic" in JOB_KINDS

    def test_projection_rejected_for_traffic(self):
        with pytest.raises(ProtocolError, match="projection only applies"):
            parse_job_submission(
                {
                    "kind": "traffic",
                    "spec": TRAFFIC,
                    "projection": {"targets": [1]},
                }
            )

    def test_sweep_options_rejected_for_traffic(self):
        with pytest.raises(ProtocolError, match="only apply to sweep"):
            parse_job_submission(
                {"kind": "traffic", "spec": TRAFFIC, "workers": 2}
            )

    def test_projection_rejected_for_sweeps(self):
        with pytest.raises(ProtocolError, match="projection only applies"):
            parse_job_submission(
                {
                    "kind": "sweep",
                    "spec": SWEEP,
                    "projection": {"targets": [1]},
                }
            )

    def test_mode_rejected_for_analyze(self):
        with pytest.raises(ProtocolError, match="only apply to sweep"):
            parse_job_submission(
                {"kind": "analyze", "spec": ANALYSIS, "mode": "serial"}
            )

    def test_unknown_sweep_mode_rejected(self):
        with pytest.raises(ProtocolError, match="unknown sweep mode"):
            parse_job_submission(
                {"kind": "sweep", "spec": SWEEP, "mode": "quantum"}
            )

    @pytest.mark.parametrize("workers", [0, -1, True, "four", 2.5])
    def test_bad_workers_rejected(self, workers):
        with pytest.raises(ProtocolError, match="workers must be"):
            parse_job_submission(
                {"kind": "sweep", "spec": SWEEP, "workers": workers}
            )

    def test_invalid_spec_contents_surface_configuration_error(self):
        bad = dict(ANALYSIS, network="bert")
        with pytest.raises(ConfigurationError, match="bert"):
            parse_job_submission({"kind": "analyze", "spec": bad})


class TestParseStreamOpen:
    def test_defaults_to_live(self):
        spec, replay = parse_stream_open({"spec": STREAM})
        assert spec == StreamSpec.from_dict(STREAM)
        assert replay is False

    def test_replay_flag(self):
        _, replay = parse_stream_open({"spec": STREAM, "replay": True})
        assert replay is True

    def test_non_boolean_replay_rejected(self):
        with pytest.raises(ProtocolError, match="replay must be a boolean"):
            parse_stream_open({"spec": STREAM, "replay": 1})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown stream fields"):
            parse_stream_open({"spec": STREAM, "mode": "fast"})

    def test_missing_spec_rejected(self):
        with pytest.raises(ProtocolError, match="spec must be a JSON object"):
            parse_stream_open({"replay": True})


class TestParseRecords:
    def test_normalises_defaults(self):
        parsed = parse_records(
            {
                "records": [
                    {"seq_len": 10, "time_s": 0.1},
                    {"seq_len": 20, "time_s": 0.2, "tgt_len": 5, "epoch": 2},
                ]
            }
        )
        assert parsed == [
            {"seq_len": 10, "time_s": 0.1, "tgt_len": None, "epoch": 0},
            {"seq_len": 20, "time_s": 0.2, "tgt_len": 5, "epoch": 2},
        ]

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"records": []},
            {"records": "lots"},
        ],
    )
    def test_missing_or_empty_records_rejected(self, payload):
        with pytest.raises(ProtocolError, match="non-empty 'records'"):
            parse_records(payload)

    def test_non_object_record_rejected(self):
        with pytest.raises(ProtocolError, match=r"records\[1\]"):
            parse_records({"records": [{"seq_len": 1, "time_s": 0.1}, 7]})

    def test_unknown_record_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields: speed"):
            parse_records(
                {"records": [{"seq_len": 1, "time_s": 0.1, "speed": 9}]}
            )

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ProtocolError, match="integer seq_len"):
            parse_records({"records": [{"seq_len": 1}]})

    def test_non_positive_values_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            parse_records({"records": [{"seq_len": 0, "time_s": 0.1}]})
        with pytest.raises(ConfigurationError, match="positive"):
            parse_records({"records": [{"seq_len": 1, "time_s": 0.0}]})
