"""Unit tests for repro.kernels.embedding."""

import pytest

from repro.kernels.embedding import embedding_gather, embedding_scatter_grad


class TestGather:
    def test_traffic_scales_with_tokens(self):
        small = embedding_gather(100, 1024, 36549)
        large = embedding_gather(1000, 1024, 36549)
        assert large.work.traffic.read_bytes > 9 * small.work.traffic.read_bytes

    def test_l2_working_set_is_table(self):
        inv = embedding_gather(100, 1024, 36549)
        assert inv.work.traffic.l2_working_set == 36549 * 1024 * 4

    def test_no_flops(self):
        assert embedding_gather(10, 16, 100).flops == 0.0

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            embedding_gather(0, 16, 100)


class TestScatterGrad:
    def test_read_modify_write(self):
        inv = embedding_scatter_grad(100, 1024, 36549)
        moved = 100 * 1024 * 4
        assert inv.work.traffic.read_bytes == 2 * moved
        assert inv.work.traffic.write_bytes == moved

    def test_one_add_per_element(self):
        inv = embedding_scatter_grad(100, 1024, 36549)
        assert inv.flops == 100 * 1024

    def test_vocab_size_preserved_in_shape(self):
        # Key Observation 6: vocabulary must stay full-size.
        inv = embedding_scatter_grad(10, 8, 12345)
        assert inv.shape[-1] == 12345
