"""Unit tests for declarative analysis specs."""

import json

import pytest

from repro.api.spec import AnalysisSpec, ProjectionSpec
from repro.core.seqpoint import SeqPointSelector
from repro.errors import ConfigurationError


class TestDefaults:
    def test_gnmt_paper_setup(self):
        spec = AnalysisSpec(network="gnmt")
        assert spec.dataset == "iwslt"
        assert spec.batching == "pooled"
        assert spec.batch_size == 64
        assert spec.config == 1
        assert spec.selector == "seqpoint"

    def test_ds2_paper_setup(self):
        spec = AnalysisSpec(network="ds2")
        assert spec.dataset == "librispeech"
        assert spec.batching == "sortagrad"

    def test_explicit_names_win(self):
        spec = AnalysisSpec(network="gnmt", dataset="librispeech",
                            batching="shuffled")
        assert spec.dataset == "librispeech"
        assert spec.batching == "shuffled"


class TestValidation:
    def test_unknown_network(self):
        with pytest.raises(ConfigurationError, match="model 'bert'"):
            AnalysisSpec(network="bert")

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError, match="dataset"):
            AnalysisSpec(network="gnmt", dataset="wmt")

    def test_unknown_batching(self):
        with pytest.raises(ConfigurationError, match="batching"):
            AnalysisSpec(network="gnmt", batching="bucketed")

    def test_unknown_selector(self):
        with pytest.raises(ConfigurationError, match="selector"):
            AnalysisSpec(network="gnmt", selector="simpoint")

    def test_bad_scale(self):
        for scale in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError, match="scale"):
                AnalysisSpec(network="gnmt", scale=scale)

    def test_bad_config(self):
        with pytest.raises(ConfigurationError, match="1-5"):
            AnalysisSpec(network="gnmt", config=9)

    def test_bad_batch_size(self):
        with pytest.raises(ConfigurationError, match="batch_size"):
            AnalysisSpec(network="gnmt", batch_size=0)

    def test_selector_kwargs_rejected_early(self):
        # Unknown keyword: caught at spec construction, not at run time.
        with pytest.raises(ConfigurationError, match="rejected kwargs"):
            AnalysisSpec(network="gnmt",
                         selector_kwargs={"not_a_kwarg": 1})
        # Known keyword, invalid value: same early failure.
        with pytest.raises(ConfigurationError, match="rejected kwargs"):
            AnalysisSpec(network="gnmt",
                         selector_kwargs={"error_threshold_pct": -1.0})

    def test_selector_kwargs_must_be_mapping(self):
        with pytest.raises(ConfigurationError, match="selector_kwargs"):
            AnalysisSpec(network="gnmt", selector_kwargs=42)


class TestSelectorKwargs:
    def test_normalised_and_hashable(self):
        spec = AnalysisSpec(
            network="gnmt",
            selector_kwargs={"initial_bins": 3, "error_threshold_pct": 2.0},
        )
        assert spec.selector_kwargs == (
            ("error_threshold_pct", 2.0), ("initial_bins", 3),
        )
        assert spec.selector_options == {
            "error_threshold_pct": 2.0, "initial_bins": 3,
        }
        hash(spec)  # specs are usable as dict keys

    def test_build_selector(self):
        spec = AnalysisSpec(network="gnmt",
                            selector_kwargs={"initial_bins": 7})
        selector = spec.build_selector()
        assert isinstance(selector, SeqPointSelector)
        assert selector.initial_bins == 7


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = AnalysisSpec(network="ds2", config=3, scale=0.25, seed=4,
                            selector="kmeans", selector_kwargs={"k": 7})
        assert AnalysisSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = AnalysisSpec(network="gnmt",
                            selector_kwargs={"error_threshold_pct": 0.5})
        restored = AnalysisSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_minimal_payload(self):
        spec = AnalysisSpec.from_dict({"network": "gnmt"})
        assert spec == AnalysisSpec(network="gnmt")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown AnalysisSpec"):
            AnalysisSpec.from_dict({"network": "gnmt", "batchsize": 32})


class TestFingerprint:
    def test_selector_excluded(self):
        base = AnalysisSpec(network="gnmt", scale=0.1)
        swept = AnalysisSpec(network="gnmt", scale=0.1, selector="median")
        assert base.trace_fingerprint() == swept.trace_fingerprint()

    def test_simulation_fields_included(self):
        base = AnalysisSpec(network="gnmt", scale=0.1)
        for other in (
            AnalysisSpec(network="ds2", scale=0.1),
            AnalysisSpec(network="gnmt", scale=0.2),
            AnalysisSpec(network="gnmt", scale=0.1, config=2),
            AnalysisSpec(network="gnmt", scale=0.1, seed=1),
            AnalysisSpec(network="gnmt", scale=0.1, batch_size=32),
            AnalysisSpec(network="gnmt", scale=0.1, batching="sorted"),
        ):
            assert base.trace_fingerprint() != other.trace_fingerprint()

    def test_json_serialisable(self):
        json.dumps(AnalysisSpec(network="gnmt").trace_fingerprint())


class TestProjectionSpec:
    def test_defaults_to_all_configs(self):
        assert ProjectionSpec().targets == (1, 2, 3, 4, 5)

    def test_accepts_lists(self):
        assert ProjectionSpec(targets=[3, 1]).targets == (3, 1)

    def test_round_trip(self):
        spec = ProjectionSpec(targets=(2, 4))
        assert ProjectionSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError, match="1-5"):
            ProjectionSpec(targets=(1, 6))

    def test_empty_targets(self):
        with pytest.raises(ConfigurationError, match="empty"):
            ProjectionSpec(targets=())

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown ProjectionSpec"):
            ProjectionSpec.from_dict({"configs": [1]})


def _spec_family():
    from repro.api.parallel import SweepSpec
    from repro.stream.spec import StreamSpec
    from repro.traffic.spec import TrafficSpec

    analysis = AnalysisSpec(network="gnmt", scale=0.05, seed=3)
    return [
        analysis,
        ProjectionSpec(targets=(2, 4)),
        SweepSpec(networks=("gnmt", "ds2"), scales=(0.05,), seeds=(0, 1)),
        StreamSpec(analysis=analysis, cadence=8),
        TrafficSpec(analysis=analysis, requests=32, arrival="deterministic"),
    ]


class TestSpecEnvelope:
    """Every member of the spec family shares the SpecBase contract."""

    def test_all_derive_from_spec_base(self):
        from repro.api.spec import SpecBase

        for spec in _spec_family():
            assert isinstance(spec, SpecBase)
            assert spec.SPEC_VERSION == 1

    def test_json_envelope_round_trips_bit_identically(self):
        for spec in _spec_family():
            text = spec.to_json()
            payload = json.loads(text)
            assert payload["v"] == spec.SPEC_VERSION
            restored = type(spec).from_json(text)
            assert restored == spec
            assert restored.to_json() == text

    def test_to_dict_stays_envelope_free(self):
        # Historical saved specs carry no "v"; both wire forms load.
        for spec in _spec_family():
            payload = spec.to_dict()
            assert "v" not in payload
            assert type(spec).from_dict(
                json.loads(json.dumps(payload))
            ) == spec

    def test_wrong_version_rejected(self):
        for spec in _spec_family():
            payload = dict(spec.to_dict(), v=99)
            with pytest.raises(ConfigurationError, match="version 99"):
                type(spec).from_dict(payload)

    def test_non_mapping_payload_rejected(self):
        for spec in _spec_family():
            with pytest.raises(ConfigurationError, match="must be a mapping"):
                type(spec).from_dict([("network", "gnmt")])

    def test_from_json_rejects_non_object_documents(self):
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            AnalysisSpec.from_json("[1, 2]")
